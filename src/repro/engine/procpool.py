"""The persistent worker-process pool behind the process backend.

Why not ``concurrent.futures.ProcessPoolExecutor``?  Three reasons that
matter here:

* **Morsel-driven pull scheduling.**  All tasks of a dispatch go onto
  one shared queue and workers pull as they finish, so a skewed morsel
  does not strand the other workers behind a static assignment.
* **Epoch hygiene.**  Every dispatch is stamped with an epoch; results
  from an abandoned dispatch (a fault raised mid-collection, a stale
  worker finishing late) are recognized and dropped instead of being
  delivered to the wrong caller.  A stale task that references an
  already-unlinked shared-memory segment fails fast in the worker
  (``FileNotFoundError`` on attach) and that error is likewise
  dropped as stale.
* **Worker-death detection with pool reset.**  Collection polls the
  result queue with a timeout and checks worker liveness; a vanished
  worker raises :class:`~repro.errors.WorkerCrashError` (retryable --
  the resilient plan runner treats it like any transient fault) and
  the pool rebuilds itself for the next dispatch.

Fork discipline mirrors the operator thread pool
(:mod:`repro.core.partitioning`): the pool is lazily created, keyed by
pid so a forked child never inherits a handle to its parent's queues,
``os.register_at_fork`` drops the child's inherited state, and an
``atexit`` hook shuts the pool down (sending one poison pill per
worker) at interpreter exit.

Workers are started via the ``fork`` context when available (the
engine's column buffers are already in the parent; fork makes worker
startup O(1) and shares the parent's shared-memory resource tracker).
The ``spawn`` fallback keeps the module importable everywhere.
"""

from __future__ import annotations

import atexit
import importlib
import multiprocessing as mp
import os
import sys
import threading
import time
from typing import Any, Optional

from repro.engine import cancel
from repro.errors import WorkerCrashError

#: Upper bound on pool processes regardless of core count.
_POOL_MAX_WORKERS = 8

#: Seconds between liveness checks while waiting for results.
_POLL_SECONDS = 0.1


def process_pool_size() -> int:
    """Worker-process count for the shared pool: core count capped at
    :data:`_POOL_MAX_WORKERS`, floor 2 so the dispatch/collect protocol
    is exercised even on single-core hosts."""
    return max(2, min(_POOL_MAX_WORKERS, os.cpu_count() or 1))


def _mp_context():
    methods = mp.get_all_start_methods()
    return mp.get_context("fork" if "fork" in methods else "spawn")


def worker_main(task_queue, result_queue) -> None:
    """Worker loop: pull ``(epoch, task_id, target, payload)`` tasks,
    resolve ``target`` (``"module:function"``) and run it.

    ``None`` is the shutdown pill.  Any exception -- including
    ``FileNotFoundError`` from attaching a stale, already-unlinked
    segment -- is shipped back as an error result; the worker itself
    never dies on a task failure.
    """
    resolved: dict[str, Any] = {}
    while True:
        task = task_queue.get()
        if task is None:
            break
        epoch, task_id, target, payload = task
        try:
            fn = resolved.get(target)
            if fn is None:
                module_name, func_name = target.split(":")
                fn = getattr(importlib.import_module(module_name),
                             func_name)
                resolved[target] = fn
            result_queue.put((epoch, task_id, "ok", fn(payload)))
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            try:
                result_queue.put((epoch, task_id, "error", exc))
            except Exception:
                # Unpicklable exception: degrade to its repr.
                result_queue.put((epoch, task_id, "error",
                                  WorkerCrashError(
                                      f"worker task failed with an "
                                      f"unpicklable error: {exc!r}")))


class ProcessPool:
    """A fixed-size pool of persistent worker processes."""

    def __init__(self, size: Optional[int] = None):
        self.size = size or process_pool_size()
        self._ctx = _mp_context()
        self._lock = threading.Lock()
        self._epoch = 0
        self._closed = False
        self._start()

    def _start(self) -> None:
        self._tasks = self._ctx.Queue()
        self._results = self._ctx.Queue()
        self._workers = []
        for _ in range(self.size):
            worker = self._ctx.Process(
                target=worker_main, args=(self._tasks, self._results),
                daemon=True, name="repro-process-worker")
            worker.start()
            self._workers.append(worker)

    # ------------------------------------------------------------------
    def worker_pids(self) -> list[int]:
        return [w.pid for w in self._workers]

    def run_batch(self, target: str, payloads: list,
                  timeout: Optional[float] = None) -> list:
        """Dispatch one batch and collect all results, in task order.

        Raises the first task error (after the batch's epoch is
        retired, so stragglers from this batch are dropped later) or
        :class:`WorkerCrashError` when a worker process dies.  One
        batch at a time: dispatches are serialized on the pool lock --
        concurrent queries queue here, matching the thread pool's
        "parallelism budget is a host property" stance.
        """
        with self._lock:
            self._epoch += 1
            epoch = self._epoch
            for task_id, payload in enumerate(payloads):
                self._tasks.put((epoch, task_id, target, payload))
            return self._collect(epoch, len(payloads), timeout)

    def _collect(self, epoch: int, expected: int,
                 timeout: Optional[float]) -> list:
        results: dict[int, Any] = {}
        deadline = None if timeout is None \
            else time.monotonic() + timeout
        while len(results) < expected:
            try:
                got_epoch, task_id, status, payload = \
                    self._results.get(timeout=_POLL_SECONDS)
            except Exception:  # queue.Empty
                # Cancellation safepoint on the drain loop: a poll (not
                # a counted checkpoint -- iteration counts here are
                # timing noise).  Raising abandons this epoch; workers
                # stay healthy, and any straggler results are dropped
                # by the epoch check once the next dispatch arrives.
                cancel.poll("process-pool drain")
                self._check_alive()
                if deadline is not None \
                        and time.monotonic() > deadline:
                    self._reset()
                    raise WorkerCrashError(
                        f"process-pool batch timed out after "
                        f"{timeout}s ({len(results)}/{expected} "
                        f"results)")
                continue
            if got_epoch != epoch:
                continue  # stale result from an abandoned dispatch
            if status == "error":
                # Later results of this epoch are stale by definition:
                # the caller unwinds (and unlinks shared memory), so
                # leave them to be dropped by the epoch check above.
                raise payload
            results[task_id] = payload
        return [results[i] for i in range(expected)]

    def _check_alive(self) -> None:
        dead = [w for w in self._workers if not w.is_alive()]
        if dead:
            pids = [w.pid for w in dead]
            self._reset()
            raise WorkerCrashError(
                f"worker process(es) {pids} died mid-batch; the pool "
                f"was rebuilt -- retry the query")

    def _reset(self) -> None:
        """Rebuild queues and processes after a death or timeout.

        During interpreter shutdown (the atexit hook racing a
        ``WorkerCrashError`` unwind, or a daemon worker reaped before
        our teardown) restarting is both pointless and unsafe --
        ``Process.start()`` raises once Python is finalizing -- so a
        closed or finalizing pool tears down without rebuilding."""
        self._terminate()
        if self._closed or sys.is_finalizing():
            return
        self._start()

    def _terminate(self) -> None:
        for worker in self._workers:
            if worker.is_alive():
                worker.terminate()
        for worker in self._workers:
            worker.join(timeout=5)
        for queue in (self._tasks, self._results):
            queue.close()
            queue.cancel_join_thread()
        self._workers = []

    def shutdown(self) -> None:
        """Orderly stop: one poison pill per worker, then join.
        Idempotent -- a second call (atexit racing an explicit
        shutdown) finds no workers and closed queues and does
        nothing."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for worker in self._workers:
                if worker.is_alive():
                    self._tasks.put(None)
            for worker in self._workers:
                worker.join(timeout=5)
            self._terminate()


# ----------------------------------------------------------------------
# The process-wide shared pool (lazy, fork-safe, shut down at exit)
# ----------------------------------------------------------------------
_pool: ProcessPool | None = None
_pool_pid: int | None = None
_pool_lock = threading.Lock()


def process_pool() -> ProcessPool:
    """The process-wide worker pool (lazily created).

    Keyed by pid: a forked child that inherited the module state sees
    a pid mismatch and builds its own pool instead of writing into its
    parent's queues.
    """
    global _pool, _pool_pid
    with _pool_lock:
        if _pool is None or _pool_pid != os.getpid():
            _pool = ProcessPool()
            _pool_pid = os.getpid()
        return _pool


def shutdown_process_pool() -> None:
    """Tear down the shared pool (tests, atexit; a fresh one is
    created on next use)."""
    global _pool, _pool_pid
    with _pool_lock:
        pool, _pool = _pool, None
        _pool_pid = None
    if pool is not None:
        pool.shutdown()


def _drop_inherited_pool() -> None:
    # After fork the child holds its parent's queue objects; using
    # (or shutting down) them would corrupt the parent's pool, so the
    # child just forgets the handle and re-creates lazily.
    global _pool, _pool_pid
    _pool = None
    _pool_pid = None


os.register_at_fork(after_in_child=_drop_inherited_pool)
atexit.register(shutdown_process_pool)
