"""The ANSI OLAP-extensions baseline (SQL/OLAP 1999 window functions)."""

from repro.olap.windowgen import (generate_olap_percentage_query,
                                  run_olap_percentage_query)

__all__ = ["generate_olap_percentage_query",
           "run_olap_percentage_query"]
