"""The crash-consistency sweep as a test, plus its self-tests (the
sweep must not be blind to the failure classes it exists to catch)."""

import itertools

import pytest

from repro.core import execute as execute_mod
from repro.fuzz.crash import SweepStats, sweep_case, sweep_cases
from repro.fuzz.generator import CaseGenerator
from repro.fuzz.runner import run_case


def _cases(count, seed=0, families=None):
    generator = CaseGenerator(seed=seed) if families is None \
        else CaseGenerator(seed=seed, families=families)
    return list(generator.cases(count))


class TestSweep:
    def test_small_budget_sweep_is_clean(self):
        stats = sweep_cases(_cases(6))
        assert stats.ok, "\n".join(f.describe()
                                   for f in stats.findings)
        assert stats.injections > 0
        # both recovery modes must actually occur in the sample
        assert stats.recovered > 0
        assert stats.clean_errors > 0

    def test_sweep_counts_every_site_and_kind(self):
        stats = SweepStats()
        case = _cases(1)[0]
        sweep_case(case, stats)
        assert stats.cases == 1
        # one injection per (site, index, kind) triple
        assert stats.injections % len(
            ("transient", "resource", "crash")) == 0

    def test_sweep_detects_a_leaky_runtime(self, monkeypatch):
        """Self-test: neuter the plan cleanup and the sweep must
        report leaked temp tables (it is not blind)."""
        monkeypatch.setattr(execute_mod, "cleanup_plan",
                            lambda db, plan: None)
        stats = SweepStats()
        # pin to a percentage case whose plan materializes temp
        # tables, so the self-test stays deterministic as new
        # families join the default stream
        case = _cases(1, families=("vpct", "hpct", "hagg"))[0]
        sweep_case(case, stats)
        assert any(f.problem == "temp tables leaked"
                   for f in stats.findings)


class TestCaseTimeout:
    def test_timed_out_variants_are_excluded_not_divergent(self):
        case = _cases(1)[0]
        result = run_case(case, case_timeout=1e-9)
        statuses = {v.name: v.status for v in result.variants}
        assert any(s == "timeout" for s in statuses.values()), statuses
        assert not result.divergent, result.divergence_report()

    def test_generous_timeout_changes_nothing(self):
        for case in itertools.islice(_cases(4), 4):
            plain = run_case(case)
            timed = run_case(case, case_timeout=60.0)
            assert plain.divergent == timed.divergent
            assert [v.status for v in plain.variants] \
                == [v.status for v in timed.variants]
