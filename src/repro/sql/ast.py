"""Abstract syntax trees for the supported SQL subset.

The same expression nodes are used by the parser, the engine's
vectorized evaluator, the SQL formatter, and the percentage-query code
generator.  Statement nodes cover the subset the paper's generated code
needs:

* ``CREATE TABLE`` (column list or ``AS SELECT``), ``DROP TABLE``
* ``CREATE INDEX`` / ``DROP INDEX``
* ``INSERT INTO ... VALUES`` and ``INSERT INTO ... SELECT``
* ``SELECT`` with DISTINCT, comma/INNER/LEFT OUTER joins, WHERE,
  GROUP BY, HAVING, ORDER BY, LIMIT, window functions
* ``UPDATE ... SET ... [FROM ...] WHERE`` (join update, as used by the
  paper's UPDATE-based strategy)
* ``DELETE FROM``

The extension syntax of the paper -- ``Vpct(A BY ...)``,
``Hpct(A BY ...)`` and generalized ``sum(A BY ... DEFAULT ...)`` -- is
represented by a regular :class:`FuncCall` carrying ``by_columns`` and
``default``; the engine refuses to execute those directly (they must be
rewritten by :mod:`repro.core`), which mirrors the paper's architecture
of a code generator in front of a standard-SQL DBMS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Union


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expr):
    """A constant; ``value is None`` represents the NULL literal."""

    value: Any


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A possibly-qualified column reference, e.g. ``Fk.D1`` or ``A``."""

    name: str
    table: Optional[str] = None

    def key(self) -> str:
        """Canonical lower-case lookup key."""
        if self.table:
            return f"{self.table.lower()}.{self.name.lower()}"
        return self.name.lower()


@dataclass(frozen=True)
class Star(Expr):
    """``*`` or ``t.*`` in a select list or ``count(*)``."""

    table: Optional[str] = None


@dataclass(frozen=True)
class UnaryOp(Expr):
    """``-x`` or ``NOT x``."""

    op: str
    operand: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Arithmetic (+ - * /), comparison (= <> < <= > >=), AND, OR."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class IsNull(Expr):
    """``x IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False


@dataclass(frozen=True)
class InList(Expr):
    """``x [NOT] IN (v1, v2, ...)`` with literal items."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False


@dataclass(frozen=True)
class CaseWhen(Expr):
    """A searched CASE expression."""

    whens: tuple[tuple[Expr, Expr], ...]
    else_: Optional[Expr] = None


@dataclass(frozen=True)
class Cast(Expr):
    """``CAST(x AS type-name)``."""

    operand: Expr
    type_name: str


@dataclass(frozen=True)
class WindowSpec:
    """``OVER (PARTITION BY cols)`` -- the only window shape needed for
    the OLAP-extensions baseline."""

    partition_by: tuple[Expr, ...] = ()


@dataclass(frozen=True)
class FuncCall(Expr):
    """A function call: scalar, aggregate, windowed aggregate, or one of
    the paper's extended aggregates.

    Attributes:
        name: lower-cased function name.
        args: argument expressions (empty for ``count(*)``, which uses a
            single :class:`Star` argument instead).
        distinct: ``count(DISTINCT x)``.
        by_columns: the paper's ``BY`` sub-grouping list -- non-empty
            only for the extended syntax (``Vpct``, ``Hpct`` or a
            standard aggregate used horizontally).
        default: the companion paper's ``DEFAULT`` replacement for NULL
            result cells (e.g. ``max(1 BY deptId DEFAULT 0)``).
        over: window specification, if windowed.
    """

    name: str
    args: tuple[Expr, ...] = ()
    distinct: bool = False
    by_columns: tuple[ColumnRef, ...] = ()
    default: Optional[Expr] = None
    over: Optional[WindowSpec] = None

    @property
    def is_extended(self) -> bool:
        """True for Vpct/Hpct or any aggregate carrying a BY clause."""
        return bool(self.by_columns) or self.name in ("vpct", "hpct")


#: Names the engine treats as plain aggregate functions.  var/stdev are
#: the "non-standard extensions to compute statistical functions" the
#: companion paper's introduction mentions alongside the standard five.
AGGREGATE_NAMES = frozenset({"sum", "count", "avg", "min", "max",
                             "var", "stdev"})

#: Function names only meaningful inside a grouping-sets query:
#: ``grouping(d1, ...)`` yields the per-set NULL-placeholder bitmask and
#: ``pct(m)`` the multi-level percentage against the parent lattice
#: level.  Both are computed by the shared-scan grouping-sets operator,
#: never by the scalar evaluator.
GROUPING_SET_FUNCS = frozenset({"grouping", "pct"})


# ----------------------------------------------------------------------
# GROUP BY grouping-set constructs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Cube(Expr):
    """``CUBE (e1, ..., ek)`` inside GROUP BY: all 2**k subsets."""

    exprs: tuple[Expr, ...]


@dataclass(frozen=True)
class Rollup(Expr):
    """``ROLLUP (e1, ..., ek)`` inside GROUP BY: the k+1 prefixes,
    finest first."""

    exprs: tuple[Expr, ...]


@dataclass(frozen=True)
class GroupingSets(Expr):
    """``GROUPING SETS ((a, b), (a), ())`` inside GROUP BY: an explicit
    list of grouping sets, each a (possibly empty) expression tuple."""

    sets: tuple[tuple[Expr, ...], ...]


#: The GROUP BY element types expanded by the grouping-sets planner.
GROUPING_CONSTRUCTS = (Cube, Rollup, GroupingSets)


def has_grouping_sets(select: "Select") -> bool:
    """True when the query's GROUP BY uses CUBE/ROLLUP/GROUPING SETS."""
    return any(isinstance(e, GROUPING_CONSTRUCTS)
               for e in select.group_by)


def contains_grouping_func(expr: Expr) -> bool:
    """True when ``expr`` calls ``grouping()`` or ``pct()``."""
    return any(isinstance(node, FuncCall)
               and node.name in GROUPING_SET_FUNCS
               for node in walk(expr))


# ----------------------------------------------------------------------
# FROM clause
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TableRef:
    """A base-table source, optionally aliased."""

    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        """The name this source is known by inside the query."""
        return self.alias or self.name


@dataclass(frozen=True)
class SubquerySource:
    """A derived table: ``(SELECT ...) alias``."""

    select: "Select"
    alias: str

    @property
    def binding(self) -> str:
        return self.alias


FromSource = Union[TableRef, SubquerySource]


@dataclass(frozen=True)
class JoinStep:
    """One additional source joined onto the accumulating FROM clause.

    ``kind`` is ``cross`` (comma join; predicates live in WHERE),
    ``inner`` or ``left`` (with an ON condition).
    """

    kind: str
    source: FromSource
    on: Optional[Expr] = None


@dataclass(frozen=True)
class FromClause:
    first: FromSource
    joins: tuple[JoinStep, ...] = ()

    def sources(self) -> list[FromSource]:
        return [self.first] + [j.source for j in self.joins]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
class Statement:
    """Base class for statement nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderItem:
    expr: Expr
    ascending: bool = True


@dataclass(frozen=True)
class Select(Statement):
    items: tuple[SelectItem, ...]
    from_: Optional[FromClause] = None
    where: Optional[Expr] = None
    group_by: tuple[Expr, ...] = ()
    having: Optional[Expr] = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Optional[int] = None
    distinct: bool = False


@dataclass(frozen=True)
class ColumnSpec:
    name: str
    type_name: str


@dataclass(frozen=True)
class CreateTable(Statement):
    name: str
    columns: tuple[ColumnSpec, ...]
    primary_key: tuple[str, ...] = ()
    if_not_exists: bool = False


@dataclass(frozen=True)
class CreateTableAs(Statement):
    name: str
    select: Select


@dataclass(frozen=True)
class DropTable(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class CreateIndex(Statement):
    name: str
    table: str
    columns: tuple[str, ...]


@dataclass(frozen=True)
class DropIndex(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class InsertValues(Statement):
    table: str
    rows: tuple[tuple[Expr, ...], ...]
    columns: tuple[str, ...] = ()


@dataclass(frozen=True)
class InsertSelect(Statement):
    table: str
    select: Select
    columns: tuple[str, ...] = ()


@dataclass(frozen=True)
class Assignment:
    column: str
    value: Expr


@dataclass(frozen=True)
class Update(Statement):
    """``UPDATE t SET c = e, ... [FROM t2 [, t3 ...]] [WHERE p]``.

    The FROM list enables the paper's join-update strategy
    (``UPDATE Fk SET A = ... WHERE Fk.D1 = Fj.D1 ...``); each target
    row must match at most one joined row.
    """

    table: TableRef
    assignments: tuple[Assignment, ...]
    from_tables: tuple[TableRef, ...] = ()
    where: Optional[Expr] = None


@dataclass(frozen=True)
class Delete(Statement):
    table: TableRef
    where: Optional[Expr] = None


@dataclass(frozen=True)
class CreateView(Statement):
    """``CREATE VIEW name AS select`` -- the paper's Section 2 allows
    F to be "a view based on some complex SQL query"."""

    name: str
    select: Select


@dataclass(frozen=True)
class DropView(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class CreateMaterializedView(Statement):
    """``CREATE MATERIALIZED VIEW name AS select`` -- snapshot a
    percentage/group-by query as delta-maintained per-group state."""

    name: str
    select: Select


@dataclass(frozen=True)
class DropMaterializedView(Statement):
    name: str
    if_exists: bool = False


@dataclass(frozen=True)
class RefreshMaterializedView(Statement):
    """``REFRESH MATERIALIZED VIEW name`` -- force a full recompute."""

    name: str


@dataclass(frozen=True)
class Explain(Statement):
    """``EXPLAIN [ANALYZE] statement`` -- returns the evaluation plan
    as text; with ANALYZE the statement also *executes* and the plan is
    followed by the actuals span tree (rows and time per operator)."""

    statement: Statement
    analyze: bool = False


# ----------------------------------------------------------------------
# AST utilities
# ----------------------------------------------------------------------
def walk(expr: Expr):
    """Yield ``expr`` and every sub-expression, depth first."""
    yield expr
    if isinstance(expr, UnaryOp):
        yield from walk(expr.operand)
    elif isinstance(expr, BinaryOp):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, IsNull):
        yield from walk(expr.operand)
    elif isinstance(expr, InList):
        yield from walk(expr.operand)
        for item in expr.items:
            yield from walk(item)
    elif isinstance(expr, CaseWhen):
        for cond, result in expr.whens:
            yield from walk(cond)
            yield from walk(result)
        if expr.else_ is not None:
            yield from walk(expr.else_)
    elif isinstance(expr, Cast):
        yield from walk(expr.operand)
    elif isinstance(expr, FuncCall):
        for arg in expr.args:
            yield from walk(arg)
        if expr.default is not None:
            yield from walk(expr.default)
        if expr.over is not None:
            for part in expr.over.partition_by:
                yield from walk(part)
    elif isinstance(expr, (Cube, Rollup)):
        for sub in expr.exprs:
            yield from walk(sub)
    elif isinstance(expr, GroupingSets):
        for gset in expr.sets:
            for sub in gset:
                yield from walk(sub)


def contains_aggregate(expr: Expr) -> bool:
    """True when ``expr`` contains a non-windowed aggregate call."""
    return any(isinstance(node, FuncCall)
               and node.name in AGGREGATE_NAMES
               and node.over is None
               for node in walk(expr))


def contains_window(expr: Expr) -> bool:
    """True when ``expr`` contains a windowed function call."""
    return any(isinstance(node, FuncCall) and node.over is not None
               for node in walk(expr))


def contains_extended(expr: Expr) -> bool:
    """True when ``expr`` uses the Vpct/Hpct/BY extension syntax."""
    return any(isinstance(node, FuncCall) and node.is_extended
               for node in walk(expr))


def column_refs(expr: Expr) -> list[ColumnRef]:
    """Every column reference inside ``expr``, in walk order."""
    return [node for node in walk(expr) if isinstance(node, ColumnRef)]
