"""The multiprocess (GIL-free) grouped-aggregate backend.

Dataflow for one dispatch::

    coordinator                               workers (forked pool)
    -----------                               --------------------
    plan_morsels(group_ids)          .
    export SharedColumnBlock  ---->  attach (zero-copy views)
    fire("process-worker")           rows = order[lo:hi]
    dispatch one task/morsel  ---->  run kernels over [g_lo, g_hi)
    collect partial states    <----  PartialAggState (O(groups))
    merge: out[g_lo:g_hi] = partial
    finally: block.close()  (unlink on every exit path)

Bit-identity argument: morsels are contiguous ranges of the *stable*
group-sorted row permutation, cut only on group boundaries
(:func:`repro.engine.kernels.plan_morsels`).  Every group therefore
lands whole in exactly one morsel with its rows in original relative
order, each kernel accumulates a group's addends in the serial order,
and the merge is a disjoint slice assignment -- so sums (including
float sums), averages and variances match the serial backend to the
last bit, by construction rather than by tolerance.

Eligibility: an aggregate ships to workers only when its inputs cross
the process boundary losslessly -- ``count(*)``/``count``/``count
DISTINCT`` always (DISTINCT arguments are dictionary-encoded **on the
coordinator** with the ordinary encoding cache, so cache charges match
the serial path; only int64 codes are exported), and
sum/avg/var/stdev/min/max for INTEGER/REAL arguments.  Everything else
(VARCHAR min/max, BOOLEAN arithmetic, unknown functions) is computed
locally with the serial implementation so results *and errors* are
identical on every backend.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from typing import Callable, Optional

import numpy as np

from repro.engine import cancel, faults, kernels
from repro.engine.aggregates import compute_aggregate, count_star
from repro.engine.column import ColumnData
from repro.engine.encoding_cache import EncodingCache
from repro.engine.groupby import encode_column
from repro.engine.procpool import process_pool
from repro.engine.shm import AttachedBlock, SharedColumnBlock
from repro.engine.types import SQLType
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer

#: Worker entry point, resolved by the pool via importlib.
_WORKER_TARGET = "repro.engine.process_backend:execute_morsel_task"

#: SQL types whose buffers cross the process boundary losslessly.
_SHIPPABLE = (SQLType.INTEGER, SQLType.REAL)


def _classify(func: str, arg: Optional[ColumnData],
              distinct: bool) -> Optional[str]:
    """The worker-side kernel kind for one aggregate, or ``None`` when
    it must be computed locally (see the module docstring)."""
    if func == "count":
        if arg is None:
            return None if distinct else "count_star"
        return "count_distinct" if distinct else "count"
    if distinct:
        return None  # DISTINCT sum() etc. -> local, identical error
    if func in ("sum", "avg", "var", "stdev", "min", "max"):
        if arg is not None and arg.sql_type in _SHIPPABLE:
            return "numeric"
    return None


def _compute_local(func: str, arg: Optional[ColumnData], distinct: bool,
                   group_ids: np.ndarray, n_groups: int,
                   cache: Optional[EncodingCache]) -> ColumnData:
    if func == "count" and arg is None and not distinct:
        return count_star(group_ids, n_groups)
    if arg is None:
        # Serial raises inside compute_aggregate's callers for star
        # forms of non-count functions; mirror by passing through.
        from repro.errors import PlanningError
        raise PlanningError(f"{func}(*) is not valid; only count(*) "
                            f"may take *")
    return compute_aggregate(func, arg, distinct, group_ids, n_groups,
                             cache)


def run_grouped_aggregates(
        items: list, group_ids: np.ndarray, n_groups: int,
        cache: Optional[EncodingCache] = None, *,
        morsel_rows: int,
        metrics: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        on_parallel: Optional[Callable[[int], None]] = None) -> dict:
    """Compute every ``(key, func, arg, distinct)`` in ``items`` over
    one grouping, using worker processes where eligible.

    Returns ``{key: ColumnData}`` for **all** items -- ineligible ones
    are computed locally, so the caller never needs a fallback path
    and argument expressions are evaluated exactly once (by the
    caller, before this runs).  With too few rows to split
    (:func:`~repro.engine.kernels.plan_morsels` returns ``None``) the
    whole batch runs locally and is still bit-identical.
    """
    results: dict = {}
    if not items:
        return results
    plan = kernels.plan_morsels(group_ids, n_groups, morsel_rows)
    kinds = {key: _classify(func, arg, distinct)
             for key, func, arg, distinct in items}
    shipped = [(key, func, arg, distinct)
               for key, func, arg, distinct in items
               if kinds[key] is not None]
    if plan is None or not shipped:
        for key, func, arg, distinct in items:
            results[key] = _compute_local(func, arg, distinct,
                                          group_ids, n_groups, cache)
        return results

    # ------------------------------------------------------------------
    # Build the export: the shared row permutation plus each shipped
    # aggregate's buffers (dictionary codes for DISTINCT, encoded here
    # on the coordinator so the cache is charged exactly as in serial).
    # ------------------------------------------------------------------
    arrays: dict[str, np.ndarray] = {
        "__order": plan.order,
        "__gids": plan.sorted_group_ids.astype(np.int64),
    }
    requests: list[tuple] = []
    merge_types: dict = {}
    for key, func, arg, distinct in shipped:
        kind = kinds[key]
        arg_type = arg.sql_type if arg is not None else None
        cardinality = 0
        if kind == "count":
            arrays[f"n{key}"] = arg.nulls
        elif kind == "count_distinct":
            encoded = encode_column(arg, cache)
            arrays[f"c{key}"] = encoded.codes.astype(np.int64)
            cardinality = encoded.cardinality
        elif kind == "numeric":
            arrays[f"v{key}"] = arg.values
            arrays[f"n{key}"] = arg.nulls
        requests.append((key, func, kind, arg_type, cardinality))
        merge_types[key] = kernels.result_sql_type(func, arg_type)

    pool = process_pool()
    block = SharedColumnBlock.export(arrays)
    try:
        # The fault site fires *after* export so an injected failure
        # exercises exactly the path a real dispatch error takes:
        # unwind through this finally and unlink the segment.  The
        # cancel safepoint sits on the same spot for the same reason.
        cancel.checkpoint("process-dispatch")
        faults.fire("process-worker")
        if metrics is not None:
            metrics.counter(
                "engine_shm_bytes_exported",
                help="bytes copied into shared-memory column blocks",
            ).inc(block.nbytes)
            metrics.counter(
                "engine_parallel_tasks_total",
                help="parallel tasks dispatched, by backend",
                backend="process").inc(plan.degree)
            metrics.gauge(
                "engine_worker_pool_saturation",
                help="tasks of the last process dispatch per pool "
                     "worker (>1 means queuing)",
            ).set(plan.degree / pool.size)
        payloads = [(block.descriptor, m.lo, m.hi, m.g_lo, m.g_hi,
                     requests) for m in plan.morsels]
        span_ctx = tracer.span(
            "process-dispatch", "parallel", backend="process",
            morsels=plan.degree, workers=pool.size,
            shm_bytes=block.nbytes,
        ) if tracer is not None else nullcontext()
        with span_ctx as dispatch_span:
            task_results = pool.run_batch(_WORKER_TARGET, payloads)
            if tracer is not None:
                for morsel, task in zip(plan.morsels, task_results):
                    with tracer.span_under(
                            dispatch_span, "process-morsel",
                            "parallel", worker_pid=task["pid"],
                            worker_seconds=round(task["seconds"], 6),
                            rows=morsel.n_rows,
                            groups=morsel.n_groups):
                        pass
    finally:
        block.close()

    if on_parallel is not None:
        on_parallel(min(plan.degree, pool.size))

    # ------------------------------------------------------------------
    # Merge.  Buffers are allocated from the *declared* result type --
    # never a partial's dtype, which np.bincount degrades to int64 for
    # empty/all-NULL morsels -- and filled by disjoint slice
    # assignment over each morsel's contiguous group range.
    # ------------------------------------------------------------------
    merged_values: dict = {}
    merged_nulls: dict = {}
    for key, _, _, _, _ in requests:
        merged_values[key] = np.zeros(
            n_groups, dtype=merge_types[key].numpy_dtype)
        merged_nulls[key] = np.zeros(n_groups, dtype=bool)
    for morsel, task in zip(plan.morsels, task_results):
        for key, state in task["partials"]:
            merged_values[key][morsel.g_lo:morsel.g_hi] = state.values
            merged_nulls[key][morsel.g_lo:morsel.g_hi] = state.nulls
    for key, func, arg, distinct in items:
        if kinds[key] is None:
            results[key] = _compute_local(func, arg, distinct,
                                          group_ids, n_groups, cache)
        else:
            results[key] = ColumnData(merge_types[key],
                                      merged_values[key],
                                      merged_nulls[key])
    return results


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def execute_morsel_task(payload: tuple) -> dict:
    """Run every requested kernel over one morsel (worker process).

    ``payload`` is ``(descriptor, lo, hi, g_lo, g_hi, requests)``;
    rows are gathered through the shared ``__order`` permutation so
    each group's addends keep their serial accumulation order.
    Attaching to an already-unlinked segment raises
    ``FileNotFoundError`` -- the intended fail-fast for stale-epoch
    tasks -- which the pool ships back and the epoch check discards.
    """
    descriptor, lo, hi, g_lo, g_hi, requests = payload
    started = time.perf_counter()
    partials: list[tuple] = []
    with AttachedBlock(descriptor) as block:
        rows = block.array("__order")[lo:hi]
        # Arithmetic materializes a private array: no view survives
        # past block.close().
        local_gids = block.array("__gids")[lo:hi] - np.int64(g_lo)
        n_local = g_hi - g_lo
        for key, func, kind, arg_type, cardinality in requests:
            if kind == "count_star":
                state = kernels.kernel_count_star(local_gids, n_local)
            elif kind == "count":
                nulls = block.array(f"n{key}")[rows]
                state = kernels.kernel_count(nulls, local_gids,
                                             n_local)
            elif kind == "count_distinct":
                codes = block.array(f"c{key}")[rows]
                state = kernels.kernel_count_distinct(
                    codes, cardinality, local_gids, n_local)
            else:  # numeric
                values = block.array(f"v{key}")[rows]
                nulls = block.array(f"n{key}")[rows]
                if func == "sum":
                    state = kernels.kernel_sum(values, nulls, arg_type,
                                               local_gids, n_local)
                elif func == "avg":
                    state = kernels.kernel_avg(values, nulls, arg_type,
                                               local_gids, n_local)
                elif func in ("var", "stdev"):
                    state = kernels.kernel_var_stdev(
                        func, values, nulls, arg_type, local_gids,
                        n_local)
                else:  # min/max
                    state = kernels.kernel_min_max(
                        func, values, nulls, arg_type, local_gids,
                        n_local)
            partials.append((key, state))
    return {"pid": os.getpid(),
            "seconds": time.perf_counter() - started,
            "partials": partials}
