"""Unit tests for the SPJ strategy (companion paper Section 3.4)."""

import pytest

from repro.core import (HorizontalAggStrategy, HorizontalStrategy,
                        generate_plan, run_percentage_query)
from repro.core import plan as plan_mod
from repro.errors import PercentageQueryError

QUERY = ("SELECT gender, sum(salary BY maritalstatus) FROM employee "
         "GROUP BY gender")


class TestPlanShape:
    def test_spj_creates_f0_and_projected_tables(self, employee_db):
        plan = generate_plan(employee_db, QUERY,
                             HorizontalAggStrategy(source="F"))
        purposes = [s.purpose for s in plan.steps]
        # F0 + two projected tables (Married, Single) + assemble.
        assert purposes.count(plan_mod.SPJ_PROJECT) == 3
        assert purposes.count(plan_mod.ASSEMBLE) == 1

    def test_assemble_uses_left_outer_joins_anchored_at_f0(
            self, employee_db):
        plan = generate_plan(employee_db, QUERY,
                             HorizontalAggStrategy(source="F"))
        assemble = next(s.sql for s in plan.steps
                        if s.purpose == plan_mod.ASSEMBLE)
        assert assemble.count("LEFT OUTER JOIN") == 2
        assert "_f0." in assemble or "_f0 " in assemble

    def test_indirect_adds_fv(self, employee_db):
        plan = generate_plan(employee_db, QUERY,
                             HorizontalAggStrategy(source="FV"))
        purposes = [s.purpose for s in plan.steps]
        assert plan_mod.AGGREGATE_FK in purposes

    def test_statement_count_grows_with_n(self, employee_db):
        # The SPJ cost driver: one table per BY combination.
        narrow = generate_plan(employee_db, QUERY,
                               HorizontalAggStrategy(source="F"))
        wide = generate_plan(
            employee_db,
            "SELECT gender, sum(salary BY employeeid) FROM employee "
            "GROUP BY gender",
            HorizontalAggStrategy(source="F"))
        assert wide.statement_count() > narrow.statement_count()


class TestExecution:
    @pytest.mark.parametrize("source", ["F", "FV"])
    def test_matches_case_strategy(self, employee_db, source):
        spj = run_percentage_query(
            employee_db, QUERY, HorizontalAggStrategy(source=source))
        case = run_percentage_query(employee_db, QUERY,
                                    HorizontalStrategy(source="F"))
        assert spj.column_names() == case.column_names()
        assert spj.to_rows() == case.to_rows()

    def test_missing_combination_is_null(self, employee_db):
        result = run_percentage_query(
            employee_db, QUERY, HorizontalAggStrategy(source="F"))
        rows = {r[0]: r for r in result.to_rows()}
        # No married men in the fixture.
        names = result.column_names()
        record = dict(zip(names, rows["M"]))
        assert record["Married"] is None

    def test_default_replaces_null(self, employee_db):
        result = run_percentage_query(
            employee_db,
            "SELECT gender, sum(salary BY maritalstatus DEFAULT 0) "
            "FROM employee GROUP BY gender",
            HorizontalAggStrategy(source="F"))
        record = dict(zip(result.column_names(), result.to_rows()[1]))
        assert record["Married"] == 0.0

    def test_binary_coding_example(self, employee_db):
        """DMKD Table 2: gender x marital flags per employee."""
        result = run_percentage_query(
            employee_db,
            "SELECT employeeid, "
            "sum(1 BY gender, maritalstatus DEFAULT 0), sum(salary) "
            "FROM employee GROUP BY employeeid",
            HorizontalAggStrategy(source="F"))
        names = result.column_names()
        first = dict(zip(names, result.to_rows()[0]))
        assert first["M_Single"] == 1.0
        assert first["F_Single"] == 0.0
        assert first["sum_salary"] == 30000.0

    def test_no_group_by_uses_constant_key(self, employee_db):
        result = run_percentage_query(
            employee_db,
            "SELECT sum(salary BY gender) FROM employee",
            HorizontalAggStrategy(source="F"))
        assert result.n_rows == 1
        row = dict(zip(result.column_names(), result.to_rows()[0]))
        assert row["M"] == 75000.0
        assert row["F"] == 90000.0
        assert "_k" not in result.column_names()

    def test_count_distinct_direct_only(self, employee_db):
        sql = ("SELECT gender, count(DISTINCT maritalstatus BY "
               "maritalstatus) FROM employee GROUP BY gender")
        result = run_percentage_query(
            employee_db, sql, HorizontalAggStrategy(source="F"))
        assert result.n_rows == 2
        with pytest.raises(PercentageQueryError):
            generate_plan(employee_db, sql,
                          HorizontalAggStrategy(source="FV"))

    def test_hpct_rejected(self, store_db):
        with pytest.raises(PercentageQueryError):
            generate_plan(store_db,
                          "SELECT store, Hpct(salesamt BY dweek) "
                          "FROM sales GROUP BY store",
                          HorizontalAggStrategy(source="F"))

    @pytest.mark.parametrize("func", ["sum", "count", "avg", "min",
                                      "max"])
    def test_every_aggregate_spj_matches_case(self, employee_db, func):
        sql = (f"SELECT gender, {func}(salary BY maritalstatus) "
               f"FROM employee GROUP BY gender")
        spj = run_percentage_query(employee_db, sql,
                                   HorizontalAggStrategy(source="F"))
        case = run_percentage_query(employee_db, sql,
                                    HorizontalStrategy(source="F"))
        assert spj.to_rows() == case.to_rows()
