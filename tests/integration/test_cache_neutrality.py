"""E1-E7: the dictionary-encoding cache must be invisible.

Each scenario runs twice -- once with the cache enabled, once with the
``--no-encoding-cache`` ablation -- on identically seeded databases.
Results must match row for row and the logical-I/O cost model
(rows scanned / written / updated, joins, CASE evaluations, index
lookups, per-statement logical I/O) must be **bit-identical**: the
cache saves wall-clock work only, never logical work.
"""

from __future__ import annotations

import pytest

from repro import Database
from repro.core import (HorizontalAggStrategy, HorizontalStrategy,
                        VerticalStrategy, run_percentage_query)
from repro.core.shared import run_percentage_batch
from repro.datagen import load_transaction_line

ROWS = 2_000
SEED = 1234

#: Counter fields that must be identical cache-on vs cache-off.  The
#: encode_cache_* counters are deliberately excluded: they are the one
#: thing that is *supposed* to differ.
NEUTRAL_FIELDS = ("rows_scanned", "rows_written", "rows_updated",
                  "rows_joined", "case_evaluations", "index_lookups",
                  "statements")


def fresh_db(use_encoding_cache: bool) -> Database:
    db = Database(use_encoding_cache=use_encoding_cache,
                  keep_history=True)
    load_transaction_line(db, ROWS, seed=SEED)
    return db


def scenario_e1_vpct_simple(db: Database) -> list:
    """E1: one-dimensional vertical percentage (paper Section 3.1)."""
    sql = ("SELECT regionid, Vpct(salesamt) FROM transactionline "
           "GROUP BY regionid")
    return [run_percentage_query(db, sql).to_rows(),
            run_percentage_query(db, sql).to_rows()]  # warm repeat


def scenario_e2_vpct_multi(db: Database) -> list:
    sql = ("SELECT regionid, dayofweekno, "
           "Vpct(salesamt BY dayofweekno) FROM transactionline "
           "GROUP BY regionid, dayofweekno")
    return [run_percentage_query(db, sql,
                                 VerticalStrategy()).to_rows(),
            run_percentage_query(
                db, sql, VerticalStrategy(use_update=True)).to_rows()]


def scenario_e3_hpct(db: Database) -> list:
    sql = ("SELECT regionid, Hpct(salesamt BY dayofweekno) "
           "FROM transactionline GROUP BY regionid")
    return [run_percentage_query(db, sql,
                                 HorizontalStrategy()).to_rows(),
            run_percentage_query(db, sql,
                                 HorizontalStrategy()).to_rows()]


def scenario_e4_hagg_and_join(db: Database) -> list:
    out = [run_percentage_query(
        db, "SELECT regionid, sum(salesamt BY dayofweekno) "
            "FROM transactionline GROUP BY regionid",
        HorizontalAggStrategy()).to_rows()]
    db.execute("CREATE TABLE dims AS SELECT DISTINCT regionid, "
               "dayofweekno FROM transactionline")
    out.append(db.query(
        "SELECT d.regionid, count(*) FROM dims d, transactionline t "
        "WHERE d.regionid = t.regionid "
        "AND d.dayofweekno = t.dayofweekno "
        "GROUP BY d.regionid"))
    db.execute("DROP TABLE dims")
    return out


def scenario_e5_window(db: Database) -> list:
    sql = ("SELECT regionid, salesamt / sum(salesamt) "
           "OVER (PARTITION BY regionid) FROM transactionline")
    return [sorted(db.query(sql)), sorted(db.query(sql))]


def scenario_e6_dml_sequence(db: Database) -> list:
    out = [db.query("SELECT regionid, sum(salesamt) "
                    "FROM transactionline GROUP BY regionid")]
    db.execute("INSERT INTO transactionline SELECT * "
               "FROM transactionline WHERE regionid = 1")
    out.append(db.query("SELECT regionid, count(*) "
                        "FROM transactionline GROUP BY regionid"))
    db.execute("UPDATE transactionline SET salesamt = salesamt + 1 "
               "WHERE regionid = 2")
    out.append(db.query("SELECT regionid, sum(salesamt) "
                        "FROM transactionline GROUP BY regionid"))
    db.execute("DELETE FROM transactionline WHERE regionid = 1")
    out.append(db.query("SELECT regionid, count(*) "
                        "FROM transactionline GROUP BY regionid"))
    return out


def scenario_e7_shared_batch(db: Database) -> list:
    report = run_percentage_batch(db, [
        "SELECT regionid, Vpct(salesamt) FROM transactionline "
        "GROUP BY regionid",
        "SELECT regionid, Vpct(itemqty) FROM transactionline "
        "GROUP BY regionid",
    ])
    return [result.to_rows() for result in report.results] + \
        [[("shared", report.shared_groups,
           report.fallback_queries)]]


SCENARIOS = [
    ("E1", scenario_e1_vpct_simple),
    ("E2", scenario_e2_vpct_multi),
    ("E3", scenario_e3_hpct),
    ("E4", scenario_e4_hagg_and_join),
    ("E5", scenario_e5_window),
    ("E6", scenario_e6_dml_sequence),
    ("E7", scenario_e7_shared_batch),
]


def rows_match(left, right):
    assert len(left) == len(right)
    for a, b in zip(left, right):
        assert a == pytest.approx(b, nan_ok=True)


@pytest.mark.parametrize("name,scenario", SCENARIOS,
                         ids=[n for n, _ in SCENARIOS])
def test_results_and_logical_io_identical(name, scenario):
    on_db, off_db = fresh_db(True), fresh_db(False)
    on_results = scenario(on_db)
    off_results = scenario(off_db)

    assert len(on_results) == len(off_results)
    for on_rows, off_rows in zip(on_results, off_results):
        rows_match(on_rows, off_rows)

    on_totals, off_totals = on_db.stats, off_db.stats
    for field in NEUTRAL_FIELDS:
        assert getattr(on_totals, field) == getattr(off_totals, field), \
            f"{name}: {field} differs cache-on vs cache-off"

    on_io = [s.logical_io() for s in on_db.stats.history]
    off_io = [s.logical_io() for s in off_db.stats.history]
    assert on_io == off_io, f"{name}: per-statement logical I/O differs"

    # The ablation side never touches the cache; the enabled side only
    # reads it (logical neutrality is enforced above).
    assert off_db.catalog.encoding_cache.hits == 0
    assert off_db.catalog.encoding_cache.entry_count == 0


def test_warm_repeat_actually_hits():
    """Guards against the neutrality suite passing vacuously because
    nothing ever consulted the cache."""
    db = fresh_db(True)
    scenario_e1_vpct_simple(db)
    assert db.catalog.encoding_cache.hits > 0
