"""The cancel-point chaos sweep as a test, plus its self-tests (the
sweep must not be blind to the failure classes it exists to catch)."""

import pytest

from repro.core import execute as execute_mod
from repro.engine.cancel import CancelToken
from repro.fuzz.cancelsweep import (CancelSweepStats, sweep_case_cancel,
                                    sweep_cases_cancel)
from repro.fuzz.generator import CaseGenerator


def _cases(count, seed=0, families=None):
    generator = CaseGenerator(seed=seed) if families is None \
        else CaseGenerator(seed=seed, families=families)
    return list(generator.cases(count))

#: The self-tests need a percentage case whose plan materializes temp
#: tables and crosses safepoints; pin the family mix so they stay
#: deterministic as new families join the default stream.
_PLAN_FAMILIES = ("vpct", "hpct", "hagg")


class TestCancelSweep:
    def test_small_budget_sweep_is_clean(self):
        """Every backend x storage variant over a few cases: every
        armed shot must unwind as a clean typed cancellation."""
        stats = sweep_cases_cancel(_cases(3))
        assert stats.ok, "\n".join(f.describe()
                                   for f in stats.findings)
        assert stats.injections > 0
        assert stats.cancelled > 0

    def test_sweep_covers_all_variants(self):
        stats = CancelSweepStats()
        sweep_case_cancel(_cases(1)[0], stats)
        # 2 storages x 3 backends
        assert stats.variants == 6

    @pytest.mark.allow_temp_leaks
    def test_sweep_detects_a_leaky_unwind(self, monkeypatch):
        """Self-test: neuter the plan cleanup and the sweep must
        report leaked temp tables (it is not blind to leaks)."""
        monkeypatch.setattr(execute_mod, "cleanup_plan",
                            lambda db, plan: None)
        stats = CancelSweepStats()
        case = _cases(1, families=_PLAN_FAMILIES)[0]
        sweep_case_cancel(case, stats, backends=("serial",),
                          storages=("memory",))
        assert any(f.problem == "temp tables leaked"
                   for f in stats.findings)

    def test_sweep_detects_a_swallowed_cancel(self, monkeypatch):
        """Self-test: a safepoint that counts crossings but never
        raises must surface as 'armed cancellation did not fire'."""
        def blind_check(self, safepoint):
            self.hits[safepoint] = self.hits.get(safepoint, 0) + 1

        monkeypatch.setattr(CancelToken, "check", blind_check)
        stats = CancelSweepStats()
        case = _cases(1, families=_PLAN_FAMILIES)[0]
        sweep_case_cancel(case, stats, backends=("serial",),
                          storages=("memory",))
        assert any(f.problem == "armed cancellation did not fire"
                   for f in stats.findings)
