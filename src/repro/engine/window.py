"""Window functions: aggregates ``OVER (PARTITION BY ...)``.

This is the machinery behind the paper's baseline -- the ANSI OLAP
extensions (SQL/OLAP 1999 amendment) express a percentage as

    ``A / sum(A) OVER (PARTITION BY D1, ..., Dj)``

computed over the detail table.  The paper observes that "the optimizer
groups rows and computes aggregates using its own temporary tables and
indexes.  We have no control over these temporary tables."  To stay
faithful to how 2004-era engines (including Teradata's) evaluated
window functions, the operator here is **sort-based**: it materializes
a spool of the partition keys plus the argument, sorts it, computes
segment aggregates, and scatters the results back through the inverse
permutation.  The generated percentage plans, by contrast, control
their own (hash-aggregated) temporaries -- which is exactly the
asymmetry the paper's Table 6 measures.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.engine import aggregates
from repro.engine.column import ColumnData
from repro.engine.encoding_cache import EncodingCache
from repro.engine.groupby import encode_column, factorize
from repro.engine.stats import StatsCollector
from repro.obs import tracer as tracer_mod


def evaluate_window(func: str, arg: Optional[ColumnData],
                    partition_columns: list[ColumnData], n_rows: int,
                    stats: Optional[StatsCollector] = None,
                    cache: Optional[EncodingCache] = None) -> ColumnData:
    """Evaluate ``func(arg) OVER (PARTITION BY partition_columns)``.

    ``arg is None`` means ``count(*)``.  The result has one value per
    input row (the aggregate of that row's partition).
    """
    if stats is not None:
        # The window operator spools a partitioned copy of its input:
        # one read pass plus one write pass of the detail table.
        stats.add(rows_scanned=n_rows, rows_written=n_rows)
        tracer = tracer_mod.active_tracer()
        if tracer is not None and tracer.enabled:
            tracer.event("window-spool", kind="charge", func=func,
                         rows_scanned=n_rows, rows_written=n_rows)

    order = _spool_sort(partition_columns, arg, n_rows, cache)
    # Factorize the *original* partition columns (cache-hittable for
    # base-table keys) and permute the group ids into spool order; this
    # is equivalent to factorizing the taken columns because group ids
    # only identify equal-key rows.
    base = factorize(partition_columns, n_rows, cache)
    sorted_ids = base.group_ids[order]
    sorted_arg = arg.take(order) if arg is not None else None

    if sorted_arg is None:
        per_group = aggregates.count_star(sorted_ids, base.n_groups)
    else:
        per_group = aggregates.compute_aggregate(
            func, sorted_arg, False, sorted_ids, base.n_groups)

    sorted_result = per_group.take(sorted_ids.astype(np.int64))
    inverse = np.empty(n_rows, dtype=np.int64)
    inverse[order] = np.arange(n_rows, dtype=np.int64)
    return sorted_result.take(inverse)


def _spool_sort(partition_columns: list[ColumnData],
                arg: Optional[ColumnData], n_rows: int,
                cache: Optional[EncodingCache] = None) -> np.ndarray:
    """The sort phase of the spool: a stable lexicographic sort of the
    materialized partition keys (the write cost the stats counters
    charge; the sort itself is the wall-clock cost)."""
    if not partition_columns:
        return np.arange(n_rows, dtype=np.int64)
    keys = []
    for column in partition_columns:
        # Materialize the spool column (copy), then reduce it to
        # sortable codes.  The copy keeps its cache token, so the
        # encoding is served from the cache for base-table keys.
        keys.append(encode_column(column.copy(), cache).codes)
    if arg is not None:
        _ = arg.values.copy()  # the argument rides along in the spool
    return np.lexsort(tuple(reversed(keys))).astype(np.int64)
