"""Ablation benchmarks for design choices both papers call out.

* ``case_dispatch``: the O(N)-per-row linear CASE evaluation real
  optimizers perform versus the O(1) hash dispatch the papers propose
  (Section 3.2 / DMKD Section 3.5).
* ``join_index``: the division join of the vertical strategy with and
  without the recommended index on the common subkey.
* ``scaling``: direct versus indirect CASE as n grows (DMKD
  Section 4.2's scalability discussion).
* ``encoding_cache``: warm repeats of a Vpct plan with the
  table-versioned dictionary-encoding cache on versus off.
"""

import pytest

from benchmarks.conftest import EMPLOYEE_N, SALES_N, TL_N, run_once
from repro import Database
from repro.bench.harness import run_hagg_experiment, run_vpct_experiment
from repro.datagen import load_employee, load_sales
from repro.bench.workloads import (DMKD_TRANSACTION_QUERIES,
                                   SIGMOD_QUERIES, QuerySpec)
from repro.core import HorizontalStrategy, VerticalStrategy
from repro.datagen import load_transaction_line

#: The 100-column pivot (subdeptId) stresses CASE dispatch most.
_PIVOT_SPEC = DMKD_TRANSACTION_QUERIES[2]


@pytest.fixture(scope="module")
def linear_db():
    db = Database(case_dispatch="linear")
    load_transaction_line(db, TL_N)
    return db


@pytest.fixture(scope="module")
def hash_db():
    db = Database(case_dispatch="hash")
    load_transaction_line(db, TL_N)
    return db


class TestCaseDispatch:
    def test_linear(self, benchmark, linear_db):
        result = run_once(benchmark, lambda: run_hagg_experiment(
            linear_db, _PIVOT_SPEC, HorizontalStrategy(source="F"),
            name="linear"))
        benchmark.extra_info["case_evaluations"] = \
            result.case_evaluations

    def test_hash(self, benchmark, hash_db):
        result = run_once(benchmark, lambda: run_hagg_experiment(
            hash_db, _PIVOT_SPEC, HorizontalStrategy(source="F"),
            name="hash"))
        benchmark.extra_info["case_evaluations"] = \
            result.case_evaluations


class TestJoinIndex:
    SPEC = SIGMOD_QUERIES[6]  # sales dept | dweek,monthNo

    def test_with_index(self, benchmark, sigmod_db):
        result = run_once(benchmark, lambda: run_vpct_experiment(
            sigmod_db, self.SPEC, VerticalStrategy(),
            name="with-index"))
        assert result.result_rows > 0

    def test_without_index(self, benchmark, sigmod_db):
        result = run_once(benchmark, lambda: run_vpct_experiment(
            sigmod_db, self.SPEC,
            VerticalStrategy(create_indexes=False),
            name="without-index"))
        assert result.result_rows > 0


class TestEncodingCache:
    """Warm Vpct/Hpct runs with the encoding cache on vs the
    ``--no-encoding-cache`` ablation (same plans, same logical I/O;
    only the np.unique passes differ)."""

    SPEC = SIGMOD_QUERIES[6]  # sales dept | dweek,monthNo

    def _bench(self, benchmark, use_cache: bool):
        db = Database(use_encoding_cache=use_cache)
        load_employee(db, EMPLOYEE_N)
        load_sales(db, SALES_N)
        # Prime: the measured runs are warm repeats either way, so the
        # cells isolate the cache's steady-state effect.
        run_vpct_experiment(db, self.SPEC, VerticalStrategy())
        result = run_once(benchmark, lambda: run_vpct_experiment(
            db, self.SPEC, VerticalStrategy(),
            name="cache-on" if use_cache else "cache-off"))
        assert result.result_rows > 0
        benchmark.extra_info["encode_cache_hits"] = \
            result.encode_cache_hits
        benchmark.extra_info["logical_io"] = result.logical_io
        return result

    def test_cache_on(self, benchmark):
        result = self._bench(benchmark, True)
        assert result.encode_cache_hits > 0

    def test_cache_off(self, benchmark):
        result = self._bench(benchmark, False)
        assert result.encode_cache_hits == 0


class TestScaling:
    """Direct vs indirect CASE while n doubles (same query shape)."""

    SPEC = QuerySpec("transactionLine deptId | dow,month",
                     "transactionline", "salesamt",
                     totals=("deptid",),
                     by=("dayofweekno", "monthno"))

    @pytest.mark.parametrize("scale", [1, 2, 4])
    @pytest.mark.parametrize("source", ["F", "FV"])
    def test_scaling(self, benchmark, scale, source):
        db = Database()
        load_transaction_line(db, (TL_N // 4) * scale)
        result = run_once(benchmark, lambda: run_hagg_experiment(
            db, self.SPEC, HorizontalStrategy(source=source),
            name=f"case_{source}@{scale}x"))
        assert result.result_rows > 0
        benchmark.extra_info["scale"] = scale
        benchmark.extra_info["source"] = source
