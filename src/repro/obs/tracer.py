"""Structured tracing: nested spans with an injectable clock.

Span model
----------

A :class:`Span` is a named interval with attributes and children.  The
engine emits three levels of nesting::

    plan                      (core/execute.py: one generated plan)
      plan-step               (one generated SQL statement boundary)
        statement             (api/database.py: one executed statement)
          join / group-by / pivot          (operator spans)
            partition                      (parallel workers)
          scan / write / update / ...      (zero-duration "charge"
                                            events carrying counter
                                            deltas)
          governor / encoding-cache / savepoint / rollback (events)

Ad-hoc statements (``db.execute``) produce bare ``statement`` roots.

Charge events are the accounting backbone: every event with
``kind="charge"`` carries the same counter names as
:mod:`repro.engine.stats`, and :func:`audit_statement_span` asserts
that the charges below a statement span sum exactly to the counter
deltas the statement recorded.  The fuzz harness and the Hypothesis
property tests both run that audit.

Threading
---------

Each thread keeps its own span stack, so concurrent sessions sharing
one tracer interleave without corrupting each other's nesting.  A
worker thread that runs on behalf of a span opened elsewhere (the
partition pool) parents explicitly with :meth:`Tracer.span_under`.
Deep modules with no executor reference (the governor, the encoding
cache, the partitioner) reach the ambient tracer through
:func:`activate` / :func:`active_tracer`, which is also thread-local.

When the tracer is disabled, :meth:`Tracer.span` returns a shared
null context manager -- the off-path cost is one attribute read and
one branch, measured by ``repro.bench --suite obs``.
"""

from __future__ import annotations

import json
import threading
from typing import Any, Callable, Iterator, Optional

from repro.obs.clock import Clock, MonotonicClock

#: Counters audited by :func:`audit_statement_span`: every engine site
#: that charges one of these to StatsCollector also emits a
#: ``kind="charge"`` event with the same name=delta attribute, so the
#: span tree and the stats ledger must agree exactly.
#: (``case_evaluations`` is charged per-row deep inside expression
#: evaluation and ``encode_cache_evictions`` inside cache insertion;
#: neither has a span-event mirror, so neither is audited.)
AUDITED_COUNTERS = (
    "rows_scanned", "rows_written", "rows_updated", "rows_joined",
    "index_lookups", "encode_cache_hits", "encode_cache_misses",
    "storage_page_fetches", "storage_pool_hits", "storage_page_reads",
)


class MalformedSpanError(Exception):
    """A span tree violated a structural invariant."""


class Span:
    """One named interval.  ``end`` is ``None`` until the span closes;
    an *event* is a span whose ``end == start``."""

    __slots__ = ("name", "kind", "start", "end", "attrs", "children")

    def __init__(self, name: str, kind: str, start: float,
                 attrs: Optional[dict] = None):
        self.name = name
        self.kind = kind
        self.start = start
        self.end: Optional[float] = None
        self.attrs: dict[str, Any] = attrs if attrs is not None else {}
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        return (self.end - self.start) if self.end is not None else 0.0

    @property
    def is_event(self) -> bool:
        return self.end == self.start

    def walk(self) -> Iterator["Span"]:
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: Optional[str] = None,
             kind: Optional[str] = None) -> list["Span"]:
        return [span for span in self.walk()
                if (name is None or span.name == name)
                and (kind is None or span.kind == kind)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, kind={self.kind!r}, "
                f"children={len(self.children)})")


class _NullContext:
    """Returned by ``span()`` when tracing is off: enter yields None."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_CONTEXT = _NullContext()


class _SpanHandle:
    """Context manager for one enabled span.  The span is created and
    attached to its parent at ``__enter__`` (so sibling order is open
    order, deterministic under serial execution) and closed at exit."""

    __slots__ = ("_tracer", "_name", "_kind", "_attrs", "_parent",
                 "span")

    def __init__(self, tracer: "Tracer", name: str, kind: str,
                 attrs: dict, parent: Optional[Span] = None):
        self._tracer = tracer
        self._name = name
        self._kind = kind
        self._attrs = attrs
        self._parent = parent
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        tracer = self._tracer
        span = Span(self._name, self._kind, tracer.clock.now(),
                    self._attrs)
        stack = tracer._stack()
        parent = self._parent if self._parent is not None else \
            (stack[-1] if stack else None)
        tracer._attach(span, parent)
        stack.append(span)
        self.span = span
        return span

    def __exit__(self, exc_type: object, exc: object,
                 tb: object) -> bool:
        span = self.span
        if span is not None:
            if exc_type is not None:
                span.attrs.setdefault("error",
                                      getattr(exc_type, "__name__",
                                              str(exc_type)))
            span.end = self._tracer.clock.now()
            stack = self._tracer._stack()
            if stack and stack[-1] is span:
                stack.pop()
            else:  # pragma: no cover - unbalanced exit, keep sane
                try:
                    stack.remove(span)
                except ValueError:
                    pass
        return False


class Tracer:
    """Span collector with per-thread stacks and a shared root list."""

    def __init__(self, clock: Optional[Clock] = None,
                 enabled: bool = False):
        self.clock = clock if clock is not None else MonotonicClock()
        self.enabled = enabled
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self._local = threading.local()

    # ------------------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def _stack(self) -> list[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def _attach(self, span: Span, parent: Optional[Span]) -> None:
        if parent is not None:
            with self._lock:
                parent.children.append(span)
        else:
            with self._lock:
                self._roots.append(span)

    # ------------------------------------------------------------------
    def span(self, name: str, kind: str = "span", **attrs: Any):
        """Open a child of this thread's current span (``with`` it)."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanHandle(self, name, kind, attrs)

    def span_under(self, parent: Optional[Span], name: str,
                   kind: str = "span", **attrs: Any):
        """Open a span under an *explicit* parent -- the cross-thread
        handover used by partition workers, whose thread-local stack
        is empty when the work item starts."""
        if not self.enabled:
            return _NULL_CONTEXT
        return _SpanHandle(self, name, kind, attrs, parent=parent)

    def event(self, name: str, kind: str = "event",
              **attrs: Any) -> Optional[Span]:
        """Record a zero-duration span under the current span."""
        if not self.enabled:
            return None
        span = Span(name, kind, self.clock.now(), attrs)
        span.end = span.start
        stack = self._stack()
        self._attach(span, stack[-1] if stack else None)
        return span

    def current(self) -> Optional[Span]:
        stack = self._stack()
        return stack[-1] if stack else None

    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def reset(self) -> None:
        """Drop collected roots (this thread's stack too)."""
        with self._lock:
            self._roots.clear()
        self._local.stack = []

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialize every root tree, one JSON object per span."""
        return spans_to_jsonl(self.roots())


# ----------------------------------------------------------------------
# Export / import
# ----------------------------------------------------------------------
def spans_to_jsonl(roots: list[Span]) -> str:
    lines: list[str] = []
    counter = [0]

    def emit(span: Span, parent_id: Optional[int]) -> None:
        span_id = counter[0]
        counter[0] += 1
        lines.append(json.dumps({
            "id": span_id, "parent": parent_id, "name": span.name,
            "kind": span.kind, "start": span.start, "end": span.end,
            "attrs": span.attrs,
        }, sort_keys=True, default=str))
        for child in span.children:
            emit(child, span_id)

    for root in roots:
        emit(root, None)
    return "\n".join(lines) + ("\n" if lines else "")


def spans_from_jsonl(text: str) -> list[Span]:
    """Rebuild root spans from :func:`spans_to_jsonl` output."""
    by_id: dict[int, Span] = {}
    roots: list[Span] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        span = Span(record["name"], record["kind"], record["start"],
                    record["attrs"])
        span.end = record["end"]
        by_id[record["id"]] = span
        parent = record["parent"]
        if parent is None:
            roots.append(span)
        else:
            by_id[parent].children.append(span)
    return roots


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_tree(root: Span,
                normalize: Optional[Callable[[str], str]] = None,
                indent: int = 0) -> str:
    """Render a span tree as indented text.

    Durations print in milliseconds with microsecond precision --
    deterministic under a :class:`~repro.obs.clock.ManualClock`.
    Events (zero duration) print without one.  ``normalize`` is
    applied to every string attribute value (the golden tests use it
    to canonicalize generated temp-table names).
    """
    lines: list[str] = []

    def emit(span: Span, depth: int) -> None:
        parts = [span.name]
        if span.end is not None and span.end > span.start:
            parts.append(f"{(span.end - span.start) * 1000:.3f}ms")
        for key in sorted(span.attrs):
            value = span.attrs[key]
            text = _format_value(value)
            if normalize is not None and isinstance(value, str):
                text = normalize(text)
            parts.append(f"{key}={text}")
        lines.append("  " * depth + " ".join(parts))
        for child in span.children:
            emit(child, depth + 1)

    emit(root, indent)
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def validate_span_tree(root: Span) -> None:
    """Raise :class:`MalformedSpanError` unless the tree is well
    formed: every span closed, non-negative durations, every child
    interval contained within its parent's."""
    for span in root.walk():
        if span.end is None:
            raise MalformedSpanError(
                f"span {span.name!r} was never closed")
        if span.end < span.start:
            raise MalformedSpanError(
                f"span {span.name!r} ends before it starts "
                f"({span.start} -> {span.end})")
        for child in span.children:
            if child.end is None:
                raise MalformedSpanError(
                    f"span {child.name!r} (child of {span.name!r}) "
                    f"was never closed")
            if child.start < span.start or child.end > span.end:
                raise MalformedSpanError(
                    f"child {child.name!r} interval "
                    f"[{child.start}, {child.end}] escapes parent "
                    f"{span.name!r} [{span.start}, {span.end}]")


def audit_statement_span(statement: Span) -> None:
    """Check the row accounting of one ``kind="statement"`` span: the
    ``kind="charge"`` events beneath it must sum, counter by counter,
    to the statement's own recorded counter attributes.

    This ties the trace to the stats ledger -- a site that charges
    StatsCollector without emitting the mirror event (or vice versa)
    fails here.  Only meaningful for serially-executed statements: a
    concurrent statement's counter attributes are a diff over shared
    counters and may include other sessions' work.
    """
    sums: dict[str, int] = {name: 0 for name in AUDITED_COUNTERS}
    for span in statement.walk():
        if span is statement or span.kind != "charge":
            continue
        for name in AUDITED_COUNTERS:
            value = span.attrs.get(name)
            if value is not None:
                sums[name] += int(value)
    mismatches = []
    for name in AUDITED_COUNTERS:
        recorded = int(statement.attrs.get(name, 0))
        if sums[name] != recorded:
            mismatches.append(
                f"{name}: events sum to {sums[name]}, statement "
                f"recorded {recorded}")
    if mismatches:
        raise MalformedSpanError(
            "statement span "
            f"{statement.attrs.get('sql', statement.name)!r} fails "
            "the charge audit: " + "; ".join(mismatches))


# ----------------------------------------------------------------------
# Ambient (thread-local) tracer
# ----------------------------------------------------------------------
_ACTIVE = threading.local()


def active_tracer() -> Optional[Tracer]:
    """The tracer activated on this thread, or ``None``."""
    return getattr(_ACTIVE, "tracer", None)


class _Activation:
    __slots__ = ("_tracer", "_previous")

    def __init__(self, tracer: Optional[Tracer]):
        self._tracer = tracer
        self._previous: Optional[Tracer] = None

    def __enter__(self) -> Optional[Tracer]:
        self._previous = getattr(_ACTIVE, "tracer", None)
        _ACTIVE.tracer = self._tracer
        return self._tracer

    def __exit__(self, *exc: object) -> bool:
        _ACTIVE.tracer = self._previous
        return False


def activate(tracer: Optional[Tracer]) -> _Activation:
    """Make ``tracer`` this thread's ambient tracer for a ``with``
    block, so modules without an executor reference (governor, cache,
    partitioner) can emit events into the right tree."""
    return _Activation(tracer)
