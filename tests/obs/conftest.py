"""Fixtures for the observability tests.

The golden tests depend on two normalizations to stay byte-stable:

* a :class:`~repro.obs.clock.ManualClock` makes every span duration a
  fixed multiple of the tick step (execution is serial, so the open /
  close order -- and therefore every timestamp -- is deterministic);
* generated temp-table prefixes come from a process-global counter
  (:func:`repro.core.plan.fresh_prefix`), so their numeric suffixes
  depend on how many plans earlier tests generated.
  :func:`normalize_temp_names` renumbers them in first-seen order.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro import Database
from repro.obs.clock import ManualClock
from tests.conftest import PAPER_SALES_ROWS

GOLDEN_DIR = Path(__file__).parent / "golden"

_TEMP_NAME = re.compile(r"_([a-z]+)(\d+)")


def normalize_temp_names(text: str) -> str:
    """Renumber generated temp-table tokens (``_vp37`` ...) in
    first-seen order, so goldens do not depend on how many plans ran
    earlier in the process."""
    seen: dict[str, str] = {}
    per_tag: dict[str, int] = {}

    def replace(match: "re.Match[str]") -> str:
        token = match.group(0)
        if token not in seen:
            tag = match.group(1)
            per_tag[tag] = per_tag.get(tag, 0) + 1
            seen[token] = f"_{tag}{per_tag[tag]}"
        return seen[token]

    return _TEMP_NAME.sub(replace, text)


@pytest.fixture
def golden(request):
    """Compare ``text`` against ``tests/obs/golden/<name>.txt``;
    ``--update-golden`` rewrites the file instead."""
    update = request.config.getoption("--update-golden")

    def check(name: str, text: str) -> None:
        path = GOLDEN_DIR / f"{name}.txt"
        if update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(text + "\n")
            return
        assert path.exists(), (
            f"missing golden file {path}; run pytest with "
            f"--update-golden to create it")
        expected = path.read_text().rstrip("\n")
        assert text == expected, (
            f"trace differs from golden {path.name}; if the change is "
            f"intentional, re-run with --update-golden and review the "
            f"diff\n--- expected ---\n{expected}\n--- actual ---\n"
            f"{text}")

    return check


@pytest.fixture
def traced_db() -> Database:
    """A tracing database on a manual clock (deterministic spans)."""
    return Database(tracing=True, clock=ManualClock(), keep_history=True)


@pytest.fixture
def traced_sales_db(traced_db: Database) -> Database:
    """The paper's Table 1 sales example, tracing enabled."""
    traced_db.load_table(
        "sales",
        [("rid", "int"), ("state", "varchar"), ("city", "varchar"),
         ("salesamt", "real")],
        PAPER_SALES_ROWS, primary_key=["rid"])
    return traced_db


@pytest.fixture
def traced_store_db(traced_db: Database) -> Database:
    """The paper's Table 3 horizontal example, tracing enabled."""
    data = {
        2: {"Mo": 175, "Tu": 150, "We": 200, "Th": 225, "Fr": 400,
            "Sa": 600, "Su": 750},
        4: {"Tu": 360, "We": 360, "Th": 360, "Fr": 720, "Sa": 800,
            "Su": 1400},
        7: {"Mo": 128, "Tu": 128, "We": 64, "Th": 64, "Fr": 128,
            "Sa": 560, "Su": 528},
    }
    rows = []
    rid = 0
    for store, per_day in data.items():
        for day, amount in per_day.items():
            rid += 1
            rows.append((rid, store, day, float(amount)))
    traced_db.load_table(
        "sales",
        [("rid", "int"), ("store", "int"), ("dweek", "varchar"),
         ("salesamt", "real")],
        rows, primary_key=["rid"])
    return traced_db


@pytest.fixture
def traced_employee_db(traced_db: Database) -> Database:
    """The companion paper's employee example, tracing enabled."""
    rows = [
        (1, "M", "Single", 30000.0),
        (2, "F", "Single", 50000.0),
        (3, "F", "Married", 40000.0),
        (4, "M", "Single", 45000.0),
    ]
    traced_db.load_table(
        "employee",
        [("employeeid", "int"), ("gender", "varchar"),
         ("maritalstatus", "varchar"), ("salary", "real")],
        rows, primary_key=["employeeid"])
    return traced_db
