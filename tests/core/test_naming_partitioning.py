"""Unit tests for result-column naming and vertical partitioning."""

import pytest

from repro.core.naming import NamingPolicy, combo_column_name, sanitize
from repro.core.partitioning import split_result_columns
from repro.errors import PercentageQueryError


class TestSanitize:
    def test_plain(self):
        assert sanitize("Mon") == "Mon"

    def test_null(self):
        assert sanitize(None) == "null"

    def test_specials_replaced(self):
        assert sanitize("a b-c") == "a_b_c"

    def test_integral_float(self):
        assert sanitize(2.0) == "2"

    def test_empty(self):
        assert sanitize("") == "_"


class TestComboColumnName:
    def test_values_style(self):
        used = set()
        name = combo_column_name(["dweek", "month"], ["Mo", 2],
                                 NamingPolicy("values"), 64, used)
        assert name == "Mo_2"

    def test_full_style(self):
        used = set()
        name = combo_column_name(["dweek"], ["Mo"],
                                 NamingPolicy("full"), 64, used)
        assert name == "dweek_Mo"

    def test_leading_digit_prefixed(self):
        name = combo_column_name(["m"], [3], NamingPolicy("values"),
                                 64, set())
        assert name == "c3"

    def test_collision_suffixed(self):
        used = set()
        first = combo_column_name(["a"], ["x"], NamingPolicy("values"),
                                  64, used)
        second = combo_column_name(["a"], ["x"], NamingPolicy("values"),
                                   64, used)
        assert first == "x"
        assert second != first

    def test_abbreviation_with_stable_hash(self):
        used = set()
        long_value = "v" * 100
        name = combo_column_name(["a"], [long_value],
                                 NamingPolicy("values"), 20, used)
        assert len(name) <= 20
        again = combo_column_name(["a"], [long_value],
                                  NamingPolicy("values"), 20, set())
        assert again == name  # deterministic

    def test_prefix(self):
        name = combo_column_name(["a"], ["x"], NamingPolicy("values"),
                                 64, set(), prefix="sum_m_")
        assert name == "sum_m_x"

    def test_bad_style_rejected(self):
        with pytest.raises(ValueError):
            NamingPolicy("fancy")


class TestSplitResultColumns:
    def test_fits_in_one(self):
        assert split_result_columns(2, ["a", "b"], 10) == [["a", "b"]]

    def test_splits_evenly(self):
        parts = split_result_columns(1, list("abcdefgh"), 4)
        assert parts == [["a", "b", "c"], ["d", "e", "f"], ["g", "h"]]
        assert all(1 + len(p) <= 4 for p in parts)

    def test_keys_leave_no_room(self):
        with pytest.raises(PercentageQueryError):
            split_result_columns(5, ["a"], 5)

    def test_exact_fit(self):
        assert split_result_columns(1, ["a", "b", "c"], 4) == \
            [["a", "b", "c"]]
