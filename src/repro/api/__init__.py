"""Public API: the Database facade, the DB-API 2.0 driver, and the
high-level percentage-query builder."""

from repro.api.database import Database
from repro.api.dbapi import Connection, Cursor, connect
from repro.api.percentage import PercentageQueryBuilder

__all__ = ["Database", "Connection", "Cursor", "PercentageQueryBuilder",
           "connect"]
