"""Unit tests for the text renderer and the interactive shell."""

import io

import pytest

from repro import Database
from repro.api.display import format_table, render_value
from repro.cli import Shell, _parse_strategy
from repro.core import (HorizontalAggStrategy, HorizontalStrategy,
                        VerticalStrategy)
from repro.engine.column import ColumnData
from repro.engine.table import Table
from repro.engine.types import SQLType


class TestRenderValue:
    def test_null(self):
        assert render_value(None) == "NULL"

    def test_float_trims_zeros(self):
        assert render_value(0.25) == "0.25"
        assert render_value(1.0) == "1"

    def test_float_digits(self):
        assert render_value(1 / 3, float_digits=2) == "0.33"

    def test_int_and_str(self):
        assert render_value(7) == "7"
        assert render_value("x") == "x"


class TestFormatTable:
    @pytest.fixture
    def table(self):
        return Table.from_columns("t", [
            ("name", ColumnData.from_values(SQLType.VARCHAR,
                                            ["a", "bbbb", None])),
            ("pct", ColumnData.from_values(SQLType.REAL,
                                           [0.5, 0.25, None])),
        ])

    def test_alignment_and_counts(self, table):
        text = format_table(table)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "(3 rows)" in lines[-1]
        assert "NULL" in text

    def test_truncation(self, table):
        text = format_table(table, max_rows=2)
        assert "(1 more rows)" in text

    def test_single_row_grammar(self):
        table = Table.from_columns("t", [
            ("a", ColumnData.from_values(SQLType.INTEGER, [1]))])
        assert "(1 row)" in format_table(table)


class TestShell:
    @pytest.fixture
    def shell(self):
        return Shell(Database(keep_history=True), out=io.StringIO())

    def output(self, shell):
        return shell.out.getvalue()

    def test_ddl_dml_select(self, shell):
        assert shell.handle("CREATE TABLE t (a INT);")
        assert shell.handle("INSERT INTO t VALUES (1), (2);")
        assert shell.handle("SELECT a FROM t ORDER BY a;")
        text = self.output(shell)
        assert "ok (2 rows)" in text
        assert "(2 rows)" in text

    def test_percentage_query_routed(self, shell):
        shell.handle("CREATE TABLE f (g INT, m REAL);")
        shell.handle("INSERT INTO f VALUES (1, 10.0), (2, 30.0);")
        shell.handle("SELECT g, Vpct(m) FROM f GROUP BY g;")
        assert "0.25" in self.output(shell)

    def test_error_reported_not_raised(self, shell):
        assert shell.handle("SELECT * FROM ghost;")
        assert "error:" in self.output(shell)

    def test_tables_and_schema(self, shell):
        shell.handle("CREATE TABLE t (a INT, PRIMARY KEY (a));")
        shell.handle("\\tables")
        shell.handle("\\schema t")
        text = self.output(shell)
        assert "  t" in text
        assert "a INTEGER (pk)" in text

    def test_plan_command(self, shell):
        shell.handle("CREATE TABLE f (g INT, m REAL);")
        shell.handle("INSERT INTO f VALUES (1, 1.0);")
        shell.handle("\\plan SELECT g, Vpct(m) FROM f GROUP BY g;")
        text = self.output(shell)
        assert "-- strategy: vertical" in text
        assert "CREATE TABLE" in text

    def test_strategy_command(self, shell):
        shell.handle("\\strategy vertical update")
        assert shell.strategy == VerticalStrategy(use_update=True)
        shell.handle("\\strategy horizontal FV")
        assert shell.strategy == HorizontalStrategy(source="FV")
        shell.handle("\\strategy auto")
        assert shell.strategy is None

    def test_load_command(self, shell):
        shell.handle("\\load employee 500")
        assert "loaded employee (500 rows)" in self.output(shell)
        shell.handle("SELECT count(*) FROM employee;")
        assert "500" in self.output(shell)

    def test_stats_command(self, shell):
        shell.handle("CREATE TABLE t (a INT);")
        shell.handle("\\stats")
        assert "statements=" in self.output(shell)

    def test_quit(self, shell):
        assert shell.handle("\\quit") is False

    def test_unknown_command(self, shell):
        shell.handle("\\frobnicate")
        assert "unknown command" in self.output(shell)


class TestParseStrategy:
    def test_auto(self):
        assert _parse_strategy([]) is None
        assert _parse_strategy(["auto"]) is None

    def test_vertical_flags(self):
        strategy = _parse_strategy(["vertical", "update", "noindex"])
        assert strategy == VerticalStrategy(use_update=True,
                                            create_indexes=False)

    def test_spj(self):
        strategy = _parse_strategy(["horizontal", "spj", "fv"])
        assert strategy == HorizontalAggStrategy(source="FV")

    def test_bad_input(self):
        with pytest.raises(ValueError):
            _parse_strategy(["sideways"])
