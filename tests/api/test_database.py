"""Unit tests for the Database facade."""

import numpy as np
import pytest

from repro import Database
from repro.engine.types import SQLType
from repro.errors import CatalogError


class TestExecute:
    def test_select_returns_table(self, db):
        db.execute("CREATE TABLE t (a INT)")
        result = db.execute("SELECT * FROM t")
        assert result.n_rows == 0

    def test_dml_returns_count(self, db):
        db.execute("CREATE TABLE t (a INT)")
        assert db.execute("INSERT INTO t VALUES (1), (2)") == 2

    def test_execute_script(self, db):
        results = db.execute_script(
            "CREATE TABLE t (a INT); INSERT INTO t VALUES (1); "
            "SELECT a FROM t")
        assert results[1] == 1
        assert results[2].to_rows() == [(1,)]

    def test_query_requires_select(self, db):
        db.execute("CREATE TABLE t (a INT)")
        with pytest.raises(TypeError):
            db.query("INSERT INTO t VALUES (1)")

    def test_bad_option_rejected(self):
        with pytest.raises(ValueError):
            Database(case_dispatch="quantum")
        with pytest.raises(ValueError):
            Database().set_case_dispatch("quantum")


class TestLoadTable:
    def test_bulk_numpy_arrays(self, db):
        table = db.load_table(
            "t", [("a", "int"), ("b", SQLType.REAL)],
            {"a": np.arange(3, dtype=np.int64),
             "b": np.array([0.5, 1.5, 2.5])})
        assert table.n_rows == 3
        assert db.query("SELECT sum(b) FROM t") == [(4.5,)]

    def test_row_iterable(self, db):
        db.load_table("t", [("a", "int")], [(1,), (2,)])
        assert db.query("SELECT count(*) FROM t") == [(2,)]

    def test_case_insensitive_data_keys(self, db):
        db.load_table("t", [("Amount", "real")],
                      {"amount": np.array([1.0])})
        assert db.query("SELECT amount FROM t") == [(1.0,)]

    def test_missing_column_data_raises(self, db):
        with pytest.raises(KeyError):
            db.load_table("t", [("a", "int")], {"b": np.array([1])})

    def test_replace(self, db):
        db.load_table("t", [("a", "int")], [(1,)])
        db.load_table("t", [("a", "int")], [(2,)], replace=True)
        assert db.query("SELECT a FROM t") == [(2,)]

    def test_primary_key_recorded(self, db):
        table = db.load_table("t", [("a", "int")], [(1,)],
                              primary_key=["a"])
        assert table.schema.primary_key == ("a",)


class TestIntrospection:
    def test_table_names(self, db):
        db.execute("CREATE TABLE t (a INT)")
        db.execute("CREATE TABLE u (a INT)")
        assert sorted(db.table_names()) == ["t", "u"]

    def test_has_and_drop(self, db):
        db.execute("CREATE TABLE t (a INT)")
        assert db.has_table("T")
        db.drop_table("t")
        assert not db.has_table("t")
        # Same default as Catalog.drop_table (and SQL DROP TABLE):
        # dropping a missing table is an error unless opted out.
        with pytest.raises(CatalogError):
            db.drop_table("t")
        db.drop_table("t", if_exists=True)
