"""Unit tests for the variance/stddev aggregate extensions."""

import math
import statistics

import numpy as np
import pytest

from repro import Database
from repro.engine.aggregates import compute_aggregate
from repro.engine.column import ColumnData
from repro.engine.types import SQLType


def real_col(values):
    return ColumnData.from_values(SQLType.REAL, values)


class TestVectorized:
    GROUPS = np.array([0, 0, 0, 1, 1, 2], dtype=np.int64)

    def test_var_matches_statistics(self):
        values = [2.0, 4.0, 9.0, 1.0, 5.0, 7.0]
        result = compute_aggregate("var", real_col(values), False,
                                   self.GROUPS, 3)
        assert result[0] == pytest.approx(
            statistics.variance([2.0, 4.0, 9.0]))
        assert result[1] == pytest.approx(statistics.variance(
            [1.0, 5.0]))
        assert result[2] is None  # single value: sample var undefined

    def test_stdev_is_sqrt_of_var(self):
        values = [2.0, 4.0, 9.0, 1.0, 5.0, 7.0]
        var = compute_aggregate("var", real_col(values), False,
                                self.GROUPS, 3)
        std = compute_aggregate("stdev", real_col(values), False,
                                self.GROUPS, 3)
        assert std[0] == pytest.approx(math.sqrt(var[0]))

    def test_nulls_skipped(self):
        values = [2.0, None, 4.0, None, None, 1.0]
        result = compute_aggregate("var", real_col(values), False,
                                   self.GROUPS, 3)
        assert result[0] == pytest.approx(statistics.variance(
            [2.0, 4.0]))
        assert result[1] is None

    def test_constant_group_is_zero(self):
        values = [3.0, 3.0, 3.0, 1.0, 1.0, 9.0]
        result = compute_aggregate("var", real_col(values), False,
                                   self.GROUPS, 3)
        assert result[0] == 0.0
        assert result[1] == 0.0


class TestThroughSQL:
    @pytest.fixture
    def db(self):
        database = Database()
        database.execute("CREATE TABLE t (g INT, m REAL)")
        database.execute(
            "INSERT INTO t VALUES (1, 2.0), (1, 4.0), (1, 9.0), "
            "(2, 5.0)")
        return database

    def test_group_by(self, db):
        rows = db.query("SELECT g, var(m), stdev(m) FROM t "
                        "GROUP BY g ORDER BY g")
        assert rows[0][1] == pytest.approx(13.0)
        assert rows[0][2] == pytest.approx(math.sqrt(13.0))
        assert rows[1][1] is None

    def test_window(self, db):
        rows = db.query("SELECT g, var(m) OVER (PARTITION BY g) "
                        "FROM t WHERE g = 1")
        assert all(r[1] == pytest.approx(13.0) for r in rows)


class TestHorizontal:
    @pytest.fixture
    def db(self):
        database = Database()
        database.execute("CREATE TABLE t (g INT, d INT, m REAL)")
        database.execute(
            "INSERT INTO t VALUES (1, 1, 2.0), (1, 1, 4.0), "
            "(1, 2, 9.0), (2, 1, 5.0), (2, 1, 6.0)")
        return database

    def test_horizontal_var_direct(self, db):
        from repro.core import HorizontalStrategy, run_percentage_query
        result = run_percentage_query(
            db, "SELECT g, var(m BY d) FROM t GROUP BY g",
            HorizontalStrategy(source="F"))
        names = result.column_names()
        rows = {r[0]: dict(zip(names, r)) for r in result.to_rows()}
        assert rows[1]["c1"] == pytest.approx(2.0)
        assert rows[1]["c2"] is None   # single value
        assert rows[2]["c2"] is None   # no rows at all

    def test_indirect_rejected(self, db):
        from repro.core import HorizontalStrategy, generate_plan
        from repro.errors import PercentageQueryError
        with pytest.raises(PercentageQueryError):
            generate_plan(db, "SELECT g, var(m BY d) FROM t GROUP BY g",
                          HorizontalStrategy(source="FV"))

    def test_optimizer_forces_direct(self, db):
        from repro.core import choose_horizontal_strategy
        from repro.core.model import parse_percentage_query
        query = parse_percentage_query(
            "SELECT g, stdev(m BY d) FROM t GROUP BY g")
        strategy = choose_horizontal_strategy(db, query, threshold=0)
        assert strategy.source == "F"


class TestConcurrency:
    def test_concurrent_percentage_queries(self):
        """The paper's closing scenario: concurrent sessions issuing
        percentage queries against one database."""
        import threading

        from repro.core import run_percentage_query
        from repro.datagen import load_transaction_line

        db = Database()
        load_transaction_line(db, 5_000)
        errors = []
        results = []

        def worker(sql):
            try:
                results.append(run_percentage_query(db, sql).n_rows)
            except Exception as exc:  # pragma: no cover - fails test
                errors.append(exc)

        queries = [
            "SELECT regionid, Vpct(salesamt) FROM transactionline "
            "GROUP BY regionid",
            "SELECT yearno, Hpct(salesamt BY regionid) "
            "FROM transactionline GROUP BY yearno",
            "SELECT monthno, sum(salesamt BY regionid) "
            "FROM transactionline GROUP BY monthno",
            "SELECT regionid, Vpct(itemqty) FROM transactionline "
            "GROUP BY regionid",
        ] * 3
        threads = [threading.Thread(target=worker, args=(sql,))
                   for sql in queries]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(results) == len(queries)
