"""Disk-backed tables that materialize columns through the buffer pool.

A :class:`StoredTable` is a drop-in :class:`~repro.engine.table.Table`
whose column data lives on pages.  It keeps only the page map in
memory; a column is deserialized on first access and cached *weakly*,
so:

* within one statement every accessor sees the same
  :class:`~repro.engine.column.ColumnData` object (the executor's
  Frame holds strong references for the statement's duration, which
  the GROUP BY machinery's identity-based dedup relies on);
* across statements the weak entries die with the last Frame, and the
  next query re-fetches pages -- the buffer pool, not the table, is
  the cache, so resident memory stays bounded by the pool capacity
  plus live queries.

``renamed()`` (called on every scan) returns a lazy sibling sharing
the same store, page map and weak cache instead of materializing
everything the way the base class would.
"""

from __future__ import annotations

import threading
import weakref
from typing import TYPE_CHECKING, Iterator, Mapping, Optional

from repro.engine import table as table_mod
from repro.engine.column import ColumnData
from repro.engine.schema import TableSchema
from repro.engine.table import Table
from repro.errors import ExecutionError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.storage.engine import StorageEngine


class StoredTable(Table):
    """A Table whose columns live on pages behind the buffer pool."""

    def __init__(self, schema: TableSchema, store: "StorageEngine",
                 pages: Mapping[str, list[int]], n_rows: int,
                 version: Optional[int] = None,
                 shared_cache: Optional[
                     "weakref.WeakValueDictionary"] = None,
                 token: Optional[tuple] = None):
        # Deliberately does NOT call Table.__init__: there is no
        # eager column dict to validate -- the page map is the data.
        self.schema = schema
        self.version = (version if version is not None
                        else next(table_mod._VERSION_COUNTER))
        self._store = store
        self._pages = {name.lower(): list(ids)
                       for name, ids in pages.items()}
        self._row_count = int(n_rows)
        self._cache = (shared_cache if shared_cache is not None
                       else weakref.WeakValueDictionary())
        self._cache_lock = threading.Lock()
        #: ``(table_key, version)`` stamped by :meth:`seal_cache_tokens`
        #: -- shared by renamed siblings so scans under an alias still
        #: mint the base table's encoding-cache tokens.
        self._token = token
        self._columns = _StoredColumns(self)

    # ------------------------------------------------------------------
    @property
    def n_rows(self) -> int:
        return self._row_count

    def column(self, name: str) -> ColumnData:
        key = name.lower()
        if key not in self._pages:
            raise ExecutionError(
                f"no column {name!r} in table {self.name!r}")
        return self._materialize(key)

    def page_map(self) -> dict[str, list[int]]:
        """Column name (lowered) -> page id run (a copy)."""
        return {name: list(ids) for name, ids in self._pages.items()}

    def page_ids(self) -> set[int]:
        return {pid for ids in self._pages.values() for pid in ids}

    # ------------------------------------------------------------------
    def _materialize(self, key: str) -> ColumnData:
        with self._cache_lock:
            data = self._cache.get(key)
            if data is not None:
                return data
            data = self._store.read_column(self._pages[key])
            if len(data) != self._row_count:
                raise ExecutionError(
                    f"column {key!r} of table {self.name!r} "
                    f"deserialized to {len(data)} rows, expected "
                    f"{self._row_count}")
            if self._token is not None:
                data.cache_token = (self._token[0], self._token[1], key)
            self._cache[key] = data
            return data

    # ------------------------------------------------------------------
    def renamed(self, new_name: str) -> "StoredTable":
        schema = TableSchema(name=new_name,
                             columns=list(self.schema.columns),
                             primary_key=self.schema.primary_key)
        return StoredTable(schema, self._store, self._pages,
                           self._row_count, version=self.version,
                           shared_cache=self._cache,
                           token=self._token)

    def seal_cache_tokens(self) -> None:
        self._token = (self.name.lower(), self.version)
        with self._cache_lock:
            for key, data in list(self._cache.items()):
                data.cache_token = (self._token[0], self._token[1],
                                    key)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cols = ", ".join(str(c) for c in self.schema.columns)
        return (f"<StoredTable {self.name} [{cols}] "
                f"rows={self._row_count} "
                f"pages={sum(map(len, self._pages.values()))}>")


class _StoredColumns(Mapping):
    """The ``_columns`` mapping view the base-class methods iterate;
    every access materializes through the owning StoredTable."""

    __slots__ = ("_owner",)

    def __init__(self, owner: StoredTable):
        self._owner = owner

    def __getitem__(self, name: str) -> ColumnData:
        return self._owner.column(name)

    def __iter__(self) -> Iterator[str]:
        return (c.name for c in self._owner.schema.columns)

    def __len__(self) -> int:
        return len(self._owner.schema.columns)
