"""Experiment runner: generate + execute a query under one strategy and
record wall time plus the engine's logical cost counters.

Timing covers plan generation *and* execution, matching how the paper
measured its Java generator end to end (generation includes the
discovery feedback queries for horizontal strategies).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional, Union

from repro.api.database import Database
from repro.bench.workloads import QuerySpec
from repro.core.execute import execute_plan, generate_plan
from repro.core.hagg import HorizontalAggStrategy
from repro.core.horizontal import HorizontalStrategy
from repro.core.vertical import VerticalStrategy
from repro.olap.windowgen import generate_olap_percentage_query

Strategy = Union[VerticalStrategy, HorizontalStrategy,
                 HorizontalAggStrategy]


@dataclass
class ExperimentResult:
    """One measured experiment cell."""

    label: str
    strategy: str
    seconds: float
    logical_io: int
    case_evaluations: int
    statements: int
    result_rows: int
    result_columns: int

    def row(self) -> tuple:
        return (self.label, self.strategy, round(self.seconds, 4),
                self.logical_io, self.statements, self.result_rows)


def _measure(db: Database, label: str, strategy_name: str,
             run) -> ExperimentResult:
    before = db.stats.snapshot()
    statements_before = db.stats.statements
    started = time.perf_counter()
    result = run()
    elapsed = time.perf_counter() - started
    diff = db.stats.diff_since(before)
    return ExperimentResult(
        label=label, strategy=strategy_name, seconds=elapsed,
        logical_io=diff.logical_io(),
        case_evaluations=diff.case_evaluations,
        statements=db.stats.statements - statements_before,
        result_rows=result.n_rows,
        result_columns=result.schema.width())


def run_vpct_experiment(db: Database, spec: QuerySpec,
                        strategy: Optional[VerticalStrategy] = None,
                        name: str = "") -> ExperimentResult:
    """One Table 4 cell: a Vpct query under one vertical strategy."""
    strategy = strategy or VerticalStrategy()

    def run():
        plan = generate_plan(db, spec.vpct_sql(), strategy)
        return execute_plan(db, plan).result

    return _measure(db, spec.label, name or strategy.describe(), run)


def run_hpct_experiment(db: Database, spec: QuerySpec,
                        strategy: Optional[HorizontalStrategy] = None,
                        name: str = "") -> ExperimentResult:
    """One Table 5 cell: an Hpct query under one CASE strategy."""
    strategy = strategy or HorizontalStrategy()

    def run():
        plan = generate_plan(db, spec.hpct_sql(), strategy)
        return execute_plan(db, plan).result

    return _measure(db, spec.label, name or strategy.describe(), run)


def run_hagg_experiment(db: Database, spec: QuerySpec,
                        strategy: Union[HorizontalStrategy,
                                        HorizontalAggStrategy,
                                        None] = None,
                        func: str = "sum",
                        name: str = "") -> ExperimentResult:
    """One DMKD Table 3 cell: a horizontal aggregation under a CASE or
    SPJ strategy."""
    strategy = strategy or HorizontalStrategy()

    def run():
        plan = generate_plan(db, spec.hagg_sql(func), strategy)
        return execute_plan(db, plan).result

    return _measure(db, spec.label, name or strategy.describe(), run)


def run_olap_experiment(db: Database, spec: QuerySpec,
                        name: str = "OLAP extensions"
                        ) -> ExperimentResult:
    """One Table 6 baseline cell: the window-function rendition."""

    def run():
        sql = generate_olap_percentage_query(spec.vpct_sql())
        return db.execute(sql)

    return _measure(db, spec.label, name, run)
