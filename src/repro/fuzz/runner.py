"""Run one fuzz case under every applicable evaluation path.

Per family:

``vpct``
    every Table 4 vertical strategy (insert join, no-reaggregation,
    update join, no indexes, mismatched indexes, single statement when
    legal), the OLAP window rewrite on the engine, the OLAP rewrite on
    sqlite, and sqlite replays of the insert-join and update-join
    plans.
``hpct``
    both CASE pivots (direct F, indirect FV), the hash-dispatch
    engine, and a sqlite replay of the direct CASE plan.
``hagg``
    the CASE pivots plus both SPJ forms, hash dispatch, and sqlite
    replays of the CASE and SPJ plans.
``plain``
    the engine executing the query directly versus sqlite -- a pure
    engine-vs-oracle check with no code generator in the loop.
``cube``
    the engine's shared-scan grouping-sets operator versus sqlite
    running the same CUBE/ROLLUP/GROUPING SETS query expanded into a
    UNION ALL of per-set plain group-bys (sqlite has no native
    grouping sets).  Any shared-scan derivation, partial-fold, or
    GROUPING() bitmask bug diverges from the independent per-set
    recomputation.

An exception is an outcome, not a crash: if **every** variant raises,
the engines agree the input is degenerate and the case is consistent;
a mix of rows and errors (or different rows) is a divergence.

``inject_bug="vpct-denominator"`` deliberately mis-compiles the OLAP
variant (drops the ``BY`` list, flipping the denominator from the
coarse level to the grand total).  The harness must then both detect
the divergence and reduce it -- the self-test behind the acceptance
criterion.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.api.database import Database
from repro.core import plan as plan_mod
from repro.engine import shm
from repro.storage import engine as storage_engine
from repro.core.execute import execute_plan, generate_plan
from repro.core.hagg import HorizontalAggStrategy
from repro.core.horizontal import HorizontalStrategy
from repro.core.model import parse_percentage_query
from repro.core.vertical import VerticalStrategy
from repro.errors import QueryTimeout
from repro.fuzz.comparator import compare_outcomes
from repro.fuzz.dialect import cube_to_union_sql
from repro.fuzz.generator import FuzzCase
from repro.fuzz.oracle import (SqliteOracle, supports_update_from,
                               supports_windows)
from repro.obs.tracer import audit_statement_span, validate_span_tree
from repro.olap.windowgen import generate_olap_percentage_query

#: plan steps the oracle replay skips: DISCOVER/MATERIALIZE already ran
#: at generation time and indexes cannot change results.
_REPLAY_SKIP = frozenset({plan_mod.DISCOVER, plan_mod.MATERIALIZE,
                          plan_mod.INDEX})

INJECTABLE_BUGS = ("vpct-denominator",)


@dataclass
class VariantResult:
    """Outcome of one evaluation path."""

    name: str
    status: str                      # "rows" | "error" | "timeout"
    rows: Optional[list] = None
    error: Optional[str] = None

    @property
    def outcome(self) -> tuple:
        if self.status == "rows":
            return ("rows", self.rows)
        return ("error", self.error)


@dataclass
class CaseResult:
    case: FuzzCase
    variants: list[VariantResult] = field(default_factory=list)
    divergent: bool = False
    explanation: str = ""

    def divergence_report(self) -> str:
        lines = [f"case seed={self.case.seed} index={self.case.index} "
                 f"({self.case.family}): {self.explanation}",
                 f"  query: {self.case.query_sql()}",
                 f"  rows:  {len(self.case.rows)}"]
        for variant in self.variants:
            if variant.status == "error":
                lines.append(f"  {variant.name}: error {variant.error}")
            elif variant.status == "timeout":
                lines.append(f"  {variant.name}: timeout "
                             f"(excluded) {variant.error}")
            else:
                lines.append(f"  {variant.name}: {len(variant.rows)} "
                             f"rows {variant.rows!r}")
        return "\n".join(lines)


def run_case(case: FuzzCase,
             inject_bug: Optional[str] = None,
             case_timeout: Optional[float] = None,
             parallel: bool = False,
             trace: bool = False,
             backends: Sequence[str] = (),
             storages: Sequence[str] = ()) -> CaseResult:
    """Evaluate every variant and compare outcomes pairwise.

    ``case_timeout`` puts every engine variant under the resource
    governor's wall-clock budget.  A timed-out variant is excluded
    from the divergence comparison (it produced no evidence either
    way) rather than counted as an error outcome, so a slow plan on a
    loaded machine cannot masquerade as a correctness divergence.

    ``parallel`` adds partition-parallel engine variants (2 workers,
    row threshold forced to 0 so every aggregation takes the parallel
    path); they must agree bit-for-bit with the serial variants and
    the oracle.

    ``backends`` adds one engine variant per named parallel backend
    (``serial``/``thread``/``process``), each with 2 workers, a zero
    row threshold and -- for the process backend -- a 2-row morsel
    target, so even the fuzzer's tiny tables actually fan out.  All
    must agree bit-for-bit.  When ``process`` is among them, a
    shared-memory segment left live after the case counts as a
    divergence (the leaked names are reclaimed and reported).

    ``storages`` adds one engine variant per named table substrate
    beyond the default in-memory one (only ``"disk"`` adds anything:
    ``"memory"`` is the baseline every case already runs).  Disk
    variants run the family's primary strategies against a page-backed
    store in a fresh temp directory with a deliberately tiny buffer
    pool, so even small tables evict; they must agree bit-for-bit with
    the memory variants and the oracle.  A store directory left with
    stray files, or a store still open after its variant finished,
    counts as a divergence (mirroring the shared-memory leak oracle).

    ``trace`` runs every engine variant on a traced database and
    checks the trace after each successful run: every span tree must
    be well formed, every statement span must pass the charge audit,
    and the statement-span count must equal the ledger's statement
    count.  A malformed trace raises :class:`TraceValidationError`,
    which surfaces as an error outcome and therefore a divergence.
    """
    result = CaseResult(case=case)
    for name, thunk in _variants(case, inject_bug, case_timeout,
                                 parallel, trace, backends, storages):
        result.variants.append(_evaluate(name, thunk))
    if "process" in backends:
        leaked = shm.live_segment_names()
        if leaked:
            shm.force_unlink_all()
            result.divergent = True
            result.explanation = (f"leaked shared-memory segment(s): "
                                  f"{', '.join(leaked)}")
            return result
    if "disk" in storages:
        leaked = storage_engine.live_store_paths()
        if leaked:
            storage_engine.force_close_all()
            result.divergent = True
            result.explanation = (f"leaked live page store(s): "
                                  f"{', '.join(leaked)}")
            return result
    comparable = [v for v in result.variants if v.status != "timeout"]
    if not comparable:
        return result
    base = comparable[0]
    for other in comparable[1:]:
        difference = compare_outcomes(base.outcome, other.outcome)
        if difference is not None:
            result.divergent = True
            result.explanation = (f"{base.name} vs {other.name}: "
                                  f"{difference}")
            break
    return result


class TraceValidationError(Exception):
    """A traced fuzz variant produced a malformed or drifting trace."""


def _check_trace(db: Database) -> None:
    """Validate the trace a successful traced variant left behind.

    No-op on untraced databases.  Raises TraceValidationError when a
    span tree is malformed, a statement span fails the charge audit,
    or the trace recorded a different number of statements than the
    stats ledger (a span dropped or double-counted somewhere).
    """
    if not db.tracer.enabled:
        return
    roots = db.tracer.roots()
    if not roots:
        raise TraceValidationError("traced run produced no spans")
    statement_spans = 0
    try:
        for root in roots:
            validate_span_tree(root)
            for statement in root.find(kind="statement"):
                audit_statement_span(statement)
                statement_spans += 1
    except Exception as exc:
        raise TraceValidationError(str(exc)) from exc
    if statement_spans != db.stats.statements:
        raise TraceValidationError(
            f"statement-count drift: ledger recorded "
            f"{db.stats.statements} statements but the trace holds "
            f"{statement_spans} statement spans")


# ----------------------------------------------------------------------
def _evaluate(name: str, thunk: Callable[[], list]) -> VariantResult:
    try:
        rows = thunk()
    except QueryTimeout as exc:
        return VariantResult(name=name, status="timeout",
                             error=str(exc))
    except Exception as exc:  # noqa: BLE001 - errors are outcomes here
        return VariantResult(name=name, status="error",
                             error=type(exc).__name__)
    return VariantResult(name=name, status="rows", rows=rows)


def _load_db(case: FuzzCase, **db_kwargs: Any) -> Database:
    db = Database(**db_kwargs)
    db.load_table(case.table, list(case.columns),
                  [list(row) for row in case.rows])
    return db


def _strategy_rows(case: FuzzCase, strategy, **db_kwargs: Any) -> list:
    db = _load_db(case, **db_kwargs)
    try:
        plan = generate_plan(db, case.query_sql(), strategy)
        rows = execute_plan(db, plan).result.to_rows()
        _check_trace(db)
        return rows
    finally:
        db.close()


def _direct_rows(case: FuzzCase, **db_kwargs: Any) -> list:
    db = _load_db(case, **db_kwargs)
    try:
        rows = db.query(case.query_sql())
        _check_trace(db)
        return rows
    finally:
        db.close()


def _replay_rows(case: FuzzCase, strategy) -> list:
    """Generate a plan against the engine, execute it in sqlite."""
    db = _load_db(case)
    plan = generate_plan(db, case.query_sql(), strategy)
    statements = [step.sql for step in plan.steps
                  if step.purpose not in _REPLAY_SKIP]
    oracle = SqliteOracle(case.table, case.columns, case.rows)
    try:
        return oracle.replay_plan(statements, plan.result_select)
    finally:
        oracle.close()


def _olap_sql(case: FuzzCase, inject_bug: Optional[str]) -> str:
    query = parse_percentage_query(case.query_sql())
    if inject_bug == "vpct-denominator":
        for term in query.vertical_pct_terms():
            term.by_columns = ()
    return generate_olap_percentage_query(query)


def _engine_olap_rows(case: FuzzCase, inject_bug: Optional[str],
                      **db_kwargs: Any) -> list:
    db = _load_db(case, **db_kwargs)
    try:
        result = db.execute(_olap_sql(case, inject_bug))
        rows = result.to_rows()
        _check_trace(db)
        return rows
    finally:
        db.close()


def _sqlite_olap_rows(case: FuzzCase,
                      inject_bug: Optional[str]) -> list:
    sql = _olap_sql(case, inject_bug)
    oracle = SqliteOracle(case.table, case.columns, case.rows)
    try:
        return oracle.run_select(sql)
    finally:
        oracle.close()


def _sqlite_direct_rows(case: FuzzCase) -> list:
    oracle = SqliteOracle(case.table, case.columns, case.rows)
    try:
        return oracle.run_select(case.query_sql())
    finally:
        oracle.close()


def _sqlite_union_rows(case: FuzzCase) -> list:
    """Grouping-sets oracle: expand CUBE/ROLLUP/GROUPING SETS into the
    UNION ALL of its per-set plain group-bys and run that in sqlite.
    sqlite computes every set independently from the base rows, so any
    shared-scan derivation or partial-fold bug in the engine diverges
    from it."""
    sql = cube_to_union_sql(case.query_sql())
    oracle = SqliteOracle(case.table, case.columns, case.rows)
    try:
        return oracle.run_raw(sql)
    finally:
        oracle.close()


#: Engine options for the parallel fuzz variants: two workers and a
#: zero row threshold force every eligible aggregation down the
#: hash-partitioned path even on the fuzzer's tiny tables.
_PARALLEL_KW: dict[str, Any] = {"parallel_workers": 2,
                                "parallel_row_threshold": 0}

#: Engine options per ``--backend`` variant.  The process backend gets
#: a 2-row morsel target so the fuzzer's tiny tables still split into
#: multiple morsels and exercise shared-memory dispatch + merge.
_BACKEND_KW: dict[str, dict[str, Any]] = {
    "serial": {"parallel_workers": 2, "parallel_row_threshold": 0,
               "parallel_backend": "serial"},
    "thread": {"parallel_workers": 2, "parallel_row_threshold": 0},
    "process": {"parallel_workers": 2, "parallel_row_threshold": 0,
                "parallel_backend": "process", "morsel_rows": 2},
}


#: Buffer-pool capacity for disk fuzz variants: small enough that the
#: fuzzer's tables still evict pages, so the pool's replacement path
#: is inside the differential net, not just the happy path.
_STORAGE_POOL_PAGES = 8

STORAGE_VARIANTS = ("memory", "disk")


class StorageLeakError(Exception):
    """A disk fuzz variant left debris in its store directory."""


def _disk_rows(runner: Callable[..., list]) -> list:
    """Run ``runner`` (a ``_strategy_rows``-style callable accepting
    Database kwargs) against a page-backed store in a fresh temp
    directory, then sweep the directory for stray files -- leaked
    checkpoint temps and the like surface as an error outcome and
    therefore a divergence."""
    tmp = tempfile.mkdtemp(prefix="repro-fuzz-store-")
    try:
        rows = runner(storage="disk", storage_path=tmp,
                      pool_pages=_STORAGE_POOL_PAGES)
        stray = storage_engine.stray_files(tmp)
        if stray:
            raise StorageLeakError(
                f"store left stray file(s): {', '.join(stray)}")
        return rows
    finally:
        shutil.rmtree(tmp, ignore_errors=True)


def _storage_variants(case: FuzzCase, kw: dict[str, Any]
                      ) -> list[tuple[str, Callable[[], list]]]:
    """The disk twins of each family's primary strategies."""
    if case.family == "vpct":
        return [
            ("engine:join-insert-disk",
             lambda: _disk_rows(lambda **skw: _strategy_rows(
                 case, VerticalStrategy(), **skw, **kw))),
            ("engine:join-update-disk",
             lambda: _disk_rows(lambda **skw: _strategy_rows(
                 case, VerticalStrategy(use_update=True),
                 **skw, **kw))),
        ]
    if case.family in ("hpct", "hagg"):
        return [
            ("engine:case-direct-disk",
             lambda: _disk_rows(lambda **skw: _strategy_rows(
                 case, HorizontalStrategy(source="F"), **skw, **kw))),
            ("engine:case-indirect-disk",
             lambda: _disk_rows(lambda **skw: _strategy_rows(
                 case, HorizontalStrategy(source="FV"), **skw, **kw))),
        ]
    if case.family == "cube":
        return [
            ("engine:shared-scan-disk",
             lambda: _disk_rows(lambda **skw: _direct_rows(
                 case, **skw, **kw))),
        ]
    return [
        ("engine:direct-disk",
         lambda: _disk_rows(lambda **skw: _direct_rows(
             case, **skw, **kw))),
    ]


def _variants(case: FuzzCase, inject_bug: Optional[str],
              case_timeout: Optional[float] = None,
              parallel: bool = False,
              trace: bool = False,
              backends: Sequence[str] = (),
              storages: Sequence[str] = ()
              ) -> list[tuple[str, Callable[[], list]]]:
    if inject_bug is not None and inject_bug not in INJECTABLE_BUGS:
        raise ValueError(f"unknown injectable bug {inject_bug!r}; "
                         f"known: {', '.join(INJECTABLE_BUGS)}")
    unknown = [b for b in backends if b not in _BACKEND_KW]
    if unknown:
        raise ValueError(f"unknown backend(s) {', '.join(unknown)}; "
                         f"known: {', '.join(_BACKEND_KW)}")
    unknown = [s for s in storages if s not in STORAGE_VARIANTS]
    if unknown:
        raise ValueError(f"unknown storage(s) {', '.join(unknown)}; "
                         f"known: {', '.join(STORAGE_VARIANTS)}")
    # Engine variants run under the governor's wall-clock budget; the
    # sqlite oracle has no governor, so only plan *generation* of the
    # replay variants is affected.
    kw: dict[str, Any] = {}
    if case_timeout is not None:
        kw["max_query_seconds"] = case_timeout
    if trace:
        kw["tracing"] = True
    if case.family == "vpct":
        variants = _vpct_variants(case, inject_bug, kw)
        if parallel:
            variants.append(
                ("engine:join-insert-parallel",
                 lambda: _strategy_rows(case, VerticalStrategy(),
                                        **_PARALLEL_KW, **kw)))
        for backend in backends:
            variants.append(
                (f"engine:join-insert-{backend}",
                 lambda b=backend: _strategy_rows(
                     case, VerticalStrategy(), **_BACKEND_KW[b], **kw)))
        if "disk" in storages:
            variants += _storage_variants(case, kw)
        return variants
    if case.family in ("hpct", "hagg"):
        variants = _horizontal_variants(case, kw)
        if parallel:
            variants += [
                ("engine:case-direct-parallel",
                 lambda: _strategy_rows(case,
                                        HorizontalStrategy(source="F"),
                                        **_PARALLEL_KW, **kw)),
                ("engine:case-indirect-parallel",
                 lambda: _strategy_rows(case,
                                        HorizontalStrategy(source="FV"),
                                        **_PARALLEL_KW, **kw)),
                ("engine:case-direct-hash-parallel",
                 lambda: _strategy_rows(case,
                                        HorizontalStrategy(source="F"),
                                        case_dispatch="hash",
                                        **_PARALLEL_KW, **kw)),
            ]
        for backend in backends:
            variants += [
                (f"engine:case-direct-{backend}",
                 lambda b=backend: _strategy_rows(
                     case, HorizontalStrategy(source="F"),
                     **_BACKEND_KW[b], **kw)),
                (f"engine:case-direct-hash-{backend}",
                 lambda b=backend: _strategy_rows(
                     case, HorizontalStrategy(source="F"),
                     case_dispatch="hash", **_BACKEND_KW[b], **kw)),
            ]
        if "disk" in storages:
            variants += _storage_variants(case, kw)
        return variants
    if case.family == "cube":
        variants = [
            ("engine:shared-scan", lambda: _direct_rows(case, **kw)),
            ("sqlite:union-all", lambda: _sqlite_union_rows(case)),
        ]
        if parallel:
            variants.insert(
                1, ("engine:shared-scan-parallel",
                    lambda: _direct_rows(case, **_PARALLEL_KW, **kw)))
        for backend in backends:
            variants.append(
                (f"engine:shared-scan-{backend}",
                 lambda b=backend: _direct_rows(case, **_BACKEND_KW[b],
                                                **kw)))
        if "disk" in storages:
            variants += _storage_variants(case, kw)
        return variants
    variants = [
        ("engine:direct", lambda: _direct_rows(case, **kw)),
        ("sqlite:direct", lambda: _sqlite_direct_rows(case)),
    ]
    if parallel:
        variants.insert(
            1, ("engine:direct-parallel",
                lambda: _direct_rows(case, **_PARALLEL_KW, **kw)))
    for backend in backends:
        variants.append(
            (f"engine:direct-{backend}",
             lambda b=backend: _direct_rows(case, **_BACKEND_KW[b],
                                            **kw)))
    if "disk" in storages:
        variants += _storage_variants(case, kw)
    return variants


def _vpct_variants(case: FuzzCase, inject_bug: Optional[str],
                   kw: dict[str, Any]):
    variants = [
        ("engine:join-insert",
         lambda: _strategy_rows(case, VerticalStrategy(), **kw)),
        ("engine:join-rescan-fj",
         lambda: _strategy_rows(case,
                                VerticalStrategy(fj_from_fk=False),
                                **kw)),
        ("engine:join-update",
         lambda: _strategy_rows(case,
                                VerticalStrategy(use_update=True),
                                **kw)),
        ("engine:join-noindex",
         lambda: _strategy_rows(
             case, VerticalStrategy(create_indexes=False), **kw)),
        ("engine:join-mismatched-index",
         lambda: _strategy_rows(
             case, VerticalStrategy(matching_indexes=False), **kw)),
    ]
    if len(case.terms) == 1:
        variants.append(
            ("engine:single-statement",
             lambda: _strategy_rows(
                 case, VerticalStrategy(single_statement=True), **kw)))
    variants.append(("engine:olap-window",
                     lambda: _engine_olap_rows(case, inject_bug,
                                               **kw)))
    if supports_windows():
        variants.append(("sqlite:olap-window",
                         lambda: _sqlite_olap_rows(case, inject_bug)))
    variants.append(("sqlite:replay-join-insert",
                     lambda: _replay_rows(case, VerticalStrategy())))
    if supports_update_from():
        variants.append(
            ("sqlite:replay-join-update",
             lambda: _replay_rows(case,
                                  VerticalStrategy(use_update=True))))
    return variants


def _horizontal_variants(case: FuzzCase, kw: dict[str, Any]):
    variants = [
        ("engine:case-direct",
         lambda: _strategy_rows(case, HorizontalStrategy(source="F"),
                                **kw)),
        ("engine:case-indirect",
         lambda: _strategy_rows(case, HorizontalStrategy(source="FV"),
                                **kw)),
        ("engine:case-direct-hash",
         lambda: _strategy_rows(case, HorizontalStrategy(source="F"),
                                case_dispatch="hash", **kw)),
        ("sqlite:replay-case-direct",
         lambda: _replay_rows(case, HorizontalStrategy(source="F"))),
    ]
    if case.family == "hagg":
        variants += [
            ("engine:spj-direct",
             lambda: _strategy_rows(case,
                                    HorizontalAggStrategy(source="F"),
                                    **kw)),
            ("engine:spj-indirect",
             lambda: _strategy_rows(
                 case, HorizontalAggStrategy(source="FV"), **kw)),
            ("sqlite:replay-spj-direct",
             lambda: _replay_rows(case,
                                  HorizontalAggStrategy(source="F"))),
        ]
    return variants
