"""Golden EXPLAIN ANALYZE traces for the shared-scan grouping-sets
operator: one CUBE, one ROLLUP, one multi-level percentage hierarchy.

Any change to the lattice plan (set count, fold/recompute split,
per-set group counts) or to the span/charge accounting shows up as a
golden diff.  Regenerate intentionally changed traces with
``pytest tests/obs --update-golden``.
"""

from repro.obs.tracer import audit_statement_span, validate_span_tree

from tests.obs.conftest import normalize_temp_names

CUBE_SQL = ("EXPLAIN ANALYZE SELECT state, city, sum(salesamt), "
            "count(*), grouping(state, city) FROM sales "
            "GROUP BY CUBE(state, city)")
ROLLUP_SQL = ("EXPLAIN ANALYZE SELECT state, city, count(*), "
              "min(salesamt) FROM sales GROUP BY ROLLUP(state, city)")
PCT_SQL = ("EXPLAIN ANALYZE SELECT state, city, sum(salesamt), "
           "pct(salesamt) FROM sales GROUP BY ROLLUP(state, city)")


def _golden_text(db, sql) -> str:
    text = "\n".join(
        line for (line,) in db.execute(sql).to_rows())
    for root in db.tracer.roots():
        validate_span_tree(root)
        for statement in root.find(kind="statement"):
            audit_statement_span(statement)
    return normalize_temp_names(text)


class TestCubeGoldens:
    def test_cube_shared_scan(self, traced_sales_db, golden):
        golden("cube-shared-scan",
               _golden_text(traced_sales_db, CUBE_SQL))

    def test_rollup_fold_chain(self, traced_sales_db, golden):
        golden("rollup-fold-chain",
               _golden_text(traced_sales_db, ROLLUP_SQL))

    def test_rollup_percentage_hierarchy(self, traced_sales_db, golden):
        golden("rollup-percentage-hierarchy",
               _golden_text(traced_sales_db, PCT_SQL))


class TestSpanShape:
    """Structural assertions that hold regardless of golden churn."""

    def test_per_set_spans_under_the_build(self, traced_sales_db):
        db = traced_sales_db
        db.execute("SELECT state, count(*) FROM sales "
                   "GROUP BY CUBE(state, city)")
        roots = db.tracer.roots()
        builds = [s for root in roots
                  for s in root.find(name="grouping-sets-build")]
        assert len(builds) == 1
        assert builds[0].attrs["sets"] == 4
        assert builds[0].attrs["dims"] == 2
        sets = [s for root in roots
                for s in root.find(name="grouping-set")]
        # 4 requested sets but (state, city)/(state)/(city)/() are the
        # 4 distinct dim tuples, each computed exactly once
        assert len(sets) == 4
        labels = {s.attrs["set"] for s in sets}
        assert labels == {"(state, city)", "(state)", "(city)", "()"}
        for span in sets:
            assert span.attrs["groups"] >= 1
            assert span.attrs["folded"] + span.attrs["recomputed"] >= 1

    def test_fold_split_recorded(self, traced_sales_db):
        db = traced_sales_db
        db.execute("SELECT state, count(*), sum(salesamt) FROM sales "
                   "GROUP BY ROLLUP(state)")
        spans = {s.attrs["set"]: s for root in db.tracer.roots()
                 for s in root.find(name="grouping-set")}
        # count folds from (state) partials; REAL sum must recompute
        assert spans["()"].attrs["folded"] == 1
        assert spans["()"].attrs["recomputed"] == 1
        assert spans["(state)"].attrs["folded"] == 0
