"""EXPLAIN ANALYZE across its three surfaces: the SQL statement, the
ExecutionReport of a percentage plan, and the service report."""

import pytest

from repro import Database
from repro.core.execute import run_explain_analyze, run_resilient
from repro.errors import PercentageQueryError, ServiceError
from repro.obs.clock import ManualClock
from repro.service import QueryService
from repro.sql import ast
from repro.sql.formatter import format_statement
from repro.sql.parser import parse_statement


class TestSQLSurface:
    def test_parser_sets_analyze_flag(self):
        plain = parse_statement("EXPLAIN SELECT 1")
        analyzed = parse_statement("EXPLAIN ANALYZE SELECT 1")
        assert isinstance(plain, ast.Explain) and not plain.analyze
        assert isinstance(analyzed, ast.Explain) and analyzed.analyze

    def test_formatter_round_trips_analyze(self):
        statement = parse_statement("EXPLAIN ANALYZE SELECT 1")
        text = format_statement(statement)
        assert text.startswith("EXPLAIN ANALYZE ")
        assert parse_statement(text) == statement

    def test_output_has_plan_then_actuals(self, sales_db):
        result = sales_db.execute(
            "EXPLAIN ANALYZE SELECT state, sum(salesamt) FROM sales "
            "GROUP BY state")
        lines = [line for (line,) in result.to_rows()]
        assert "-- actual --" in lines
        split = lines.index("-- actual --")
        assert any(l.startswith("scan sales") for l in lines[:split])
        assert lines[split + 1].startswith("statement ")
        assert any("group-by-build" in l for l in lines[split:])

    def test_statement_really_executes(self, sales_db):
        sales_db.execute(
            "EXPLAIN ANALYZE DELETE FROM sales WHERE state = 'CA'")
        remaining = sales_db.query(
            "SELECT count(*) FROM sales WHERE state = 'CA'")
        assert remaining == [(0,)]

    def test_works_with_tracing_off_and_restores_state(self, sales_db):
        assert not sales_db.tracer.enabled
        sales_db.execute("EXPLAIN ANALYZE SELECT * FROM sales")
        assert not sales_db.tracer.enabled

    def test_plain_explain_does_not_execute(self, sales_db):
        sales_db.execute("EXPLAIN DELETE FROM sales")
        assert sales_db.query("SELECT count(*) FROM sales") == [(10,)]


class TestExecutionReportSurface:
    SQL = "SELECT state, Vpct(salesamt) FROM sales GROUP BY state"

    def test_run_explain_analyze_always_has_trace(self, sales_db):
        report = run_explain_analyze(sales_db, self.SQL)
        text = report.explain_analyze()
        assert text.splitlines()[0].startswith("plan: vertical")
        assert "plan-step" in text
        assert not sales_db.tracer.enabled  # restored

    def test_untraced_report_raises(self, sales_db):
        report = run_resilient(sales_db, self.SQL)
        assert report.trace is None
        with pytest.raises(PercentageQueryError, match="no trace"):
            report.explain_analyze()

    def test_traced_database_reports_traces_everywhere(self):
        db = Database(tracing=True, clock=ManualClock())
        db.load_table("f", [("g", "int"), ("m", "real")],
                      [(1, 2.0), (1, 6.0), (2, 4.0)])
        report = run_resilient(
            db, "SELECT g, Vpct(m) FROM f GROUP BY g")
        assert report.trace is not None
        assert report.trace.attrs["statements"] == \
            report.statements_run


class TestServiceSurface:
    def test_service_report_explain_analyze(self):
        db = Database(tracing=True)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2)")
        service = QueryService(db)
        try:
            report = service.execute("SELECT count(*) FROM t")
        finally:
            service.shutdown()
        text = report.explain_analyze()
        assert text.splitlines()[0].startswith("script: read")
        assert "statement" in text

    def test_untraced_service_report_raises(self):
        service = QueryService(Database())
        try:
            report = service.execute("SELECT 1")
        finally:
            service.shutdown()
        with pytest.raises(ServiceError, match="no trace"):
            report.explain_analyze()

    def test_write_script_traced_and_rolled_back_state(self):
        db = Database(tracing=True)
        db.execute("CREATE TABLE t (a INT)")
        service = QueryService(db)
        try:
            report = service.execute("INSERT INTO t VALUES (7)")
        finally:
            service.shutdown()
        assert report.trace.attrs["script_kind"] == "write"
        assert report.trace.find(kind="statement")
