"""Durable page-based storage: disk manager, buffer pool, WAL.

The package sits *behind* the engine's storage interface: a
storage-backed :class:`~repro.engine.catalog.Catalog` publishes
:class:`~repro.storage.stored.StoredTable` objects whose columns
materialize through the :class:`~repro.storage.pool.BufferPool`, and
every catalog mutation commits through the
:class:`~repro.storage.engine.StorageEngine`'s write-ahead log before
it becomes visible.  See ``docs/storage.md`` for the design.
"""

from repro.storage.disk import DiskManager
from repro.storage.engine import (STORE_FILES, StorageEngine,
                                  force_close_all, live_store_paths,
                                  stray_files)
from repro.storage.pages import (DEFAULT_PAGE_SIZE, decode_page,
                                 deserialize_column, encode_page,
                                 serialize_column)
from repro.storage.pool import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.stored import StoredTable
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BufferPool",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_POOL_PAGES",
    "DiskManager",
    "STORE_FILES",
    "StorageEngine",
    "StoredTable",
    "WriteAheadLog",
    "decode_page",
    "deserialize_column",
    "encode_page",
    "force_close_all",
    "live_store_paths",
    "serialize_column",
    "stray_files",
]
