"""Client sessions for the concurrent query service.

A :class:`Session` is one client's handle on the service: it carries
per-session execution defaults (applied to every snapshot reader the
scheduler builds for the session's queries), its own DB-API
connection/cursor state, and the in-flight accounting the scheduler's
admission control charges against.

Sessions are thread-safe handles but *logically* single-client: the
in-flight cap assumes one client pipelining its own queries, which is
exactly the DB-API picture (one connection per client).
"""

from __future__ import annotations

import dataclasses
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.engine.executor import PARALLEL_BACKENDS, ExecutorOptions
from repro.errors import (AdmissionRejected, CircuitBreakerOpen,
                          SessionClosed)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from concurrent.futures import Future

    from repro.api.dbapi import Connection, Cursor
    from repro.service.scheduler import ServiceReport


@dataclass(frozen=True)
class SessionDefaults:
    """Per-session execution defaults.

    ``None`` means "inherit the base database's setting"; anything else
    overrides it for this session's snapshot readers.  Write scripts
    run on the base database and keep its settings -- the knobs below
    steer read evaluation (CASE dispatch, index usage, cache usage,
    parallelism), and applying them to the shared writer would leak one
    session's preferences into every other client's view.
    """

    case_dispatch: Optional[str] = None
    use_indexes: Optional[bool] = None
    use_encoding_cache: Optional[bool] = None
    parallel_workers: Optional[int] = None
    parallel_row_threshold: Optional[int] = None
    parallel_backend: Optional[str] = None
    morsel_rows: Optional[int] = None
    #: Wall-clock deadline (seconds) every script submitted through
    #: this session runs under.  The clock starts at *submission*, so
    #: queue wait counts against it -- that is what lets the scheduler
    #: shed a query whose predicted wait already exceeds it.  ``None``
    #: falls back to the database's ``default_deadline_seconds``.
    deadline_seconds: Optional[float] = None
    #: Not an override but a *pin*: a session cannot switch table
    #: substrates (tables are already bound to one), so a non-None
    #: value asserts the base database runs on that backend and
    #: :meth:`resolve` raises on mismatch.
    storage: Optional[str] = None

    def __post_init__(self) -> None:
        if self.case_dispatch not in (None, "linear", "hash"):
            raise ValueError("case_dispatch must be 'linear' or 'hash'")
        if self.storage not in (None, "memory", "disk"):
            raise ValueError("storage must be 'memory' or 'disk'")
        if self.parallel_workers is not None and self.parallel_workers < 1:
            raise ValueError("parallel_workers must be >= 1")
        if (self.parallel_row_threshold is not None
                and self.parallel_row_threshold < 0):
            raise ValueError("parallel_row_threshold must be >= 0")
        if self.parallel_backend not in (None, *PARALLEL_BACKENDS):
            raise ValueError(
                f"parallel_backend must be one of "
                f"{', '.join(PARALLEL_BACKENDS)}")
        if self.morsel_rows is not None and self.morsel_rows < 1:
            raise ValueError("morsel_rows must be >= 1")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be > 0")

    def resolve(self, base: ExecutorOptions) -> ExecutorOptions:
        """The effective options: ``base`` with this session's
        overrides applied (a fresh object; ``base`` is not touched)."""
        def pick(override, inherited):
            return inherited if override is None else override

        if self.storage is not None and self.storage != base.storage:
            raise ValueError(
                f"session pinned storage={self.storage!r} but the "
                f"database runs on {base.storage!r}")
        return dataclasses.replace(
            base,
            case_dispatch=pick(self.case_dispatch, base.case_dispatch),
            use_indexes=pick(self.use_indexes, base.use_indexes),
            use_encoding_cache=pick(self.use_encoding_cache,
                                    base.use_encoding_cache),
            parallel_degree=pick(self.parallel_workers,
                                 base.parallel_degree),
            parallel_row_threshold=pick(self.parallel_row_threshold,
                                        base.parallel_row_threshold),
            parallel_backend=pick(self.parallel_backend,
                                  base.parallel_backend),
            morsel_rows=pick(self.morsel_rows, base.morsel_rows))


class Session:
    """One client's handle on a :class:`~repro.service.QueryService`.

    Obtained from :meth:`QueryService.create_session`; usable as a
    context manager (closing on exit).  ``submit`` returns a
    :class:`~concurrent.futures.Future` resolving to a
    :class:`~repro.service.scheduler.ServiceReport`; ``execute`` is the
    blocking convenience.
    """

    def __init__(self, service, session_id: int,
                 defaults: Optional[SessionDefaults] = None):
        self.id = session_id
        self.defaults = defaults or SessionDefaults()
        self._service = service
        self._lock = threading.Lock()
        self._closed = False
        self._in_flight = 0
        self._connection: Optional["Connection"] = None
        # Circuit-breaker state (driven by the scheduler): "closed"
        # admits freely, "open" refuses until the cooldown instant,
        # "half-open" lets trial queries through -- one success closes
        # the breaker, one failure re-opens it.
        self._breaker_state = "closed"
        self._breaker_failures = 0
        self._breaker_open_until = 0.0

    # ------------------------------------------------------------------
    # Query submission
    # ------------------------------------------------------------------
    def submit(self, sql: str) -> "Future[ServiceReport]":
        """Enqueue ``sql`` (one statement or a ';'-script) for
        asynchronous execution.  Raises
        :class:`~repro.errors.AdmissionRejected` when the scheduler's
        queue or this session's in-flight cap is full, and
        :class:`~repro.errors.SessionClosed` after :meth:`close`."""
        return self._service.scheduler.submit(self, sql)

    def execute(self, sql: str) -> "ServiceReport":
        """Submit and wait; returns the report (or raises the query's
        error)."""
        return self.submit(sql).result()

    # ------------------------------------------------------------------
    # DB-API state
    # ------------------------------------------------------------------
    def connection(self) -> "Connection":
        """This session's private DB-API connection (lazily created,
        bound to the creating thread -- see ``check_same_thread``)."""
        from repro.api import dbapi
        with self._lock:
            if self._closed:
                raise SessionClosed(f"session {self.id} is closed")
            if self._connection is None:
                self._connection = dbapi.connect(
                    database=self._service.db, check_same_thread=True)
            return self._connection

    def cursor(self) -> "Cursor":
        """A cursor on this session's DB-API connection: private
        rowcount/description/fetch state per client."""
        return self.connection().cursor()

    # ------------------------------------------------------------------
    # Scheduler accounting (called by the service's scheduler)
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def in_flight(self) -> int:
        """Queries submitted through this session and not yet done."""
        return self._in_flight

    def _reserve(self, cap: int) -> None:
        with self._lock:
            if self._closed:
                raise SessionClosed(f"session {self.id} is closed")
            if self._in_flight >= cap:
                raise AdmissionRejected(
                    f"session {self.id} already has {self._in_flight} "
                    f"queries in flight (cap {cap})")
            self._in_flight += 1

    def _release(self) -> None:
        with self._lock:
            self._in_flight -= 1

    # ------------------------------------------------------------------
    # Circuit breaker (driven by the scheduler)
    # ------------------------------------------------------------------
    @property
    def breaker_state(self) -> str:
        """``"closed"`` / ``"open"`` / ``"half-open"`` (observability;
        the scheduler drives the transitions)."""
        return self._breaker_state

    def _breaker_allow(self, now: float) -> None:
        """Gate a submission on the breaker; raises
        :class:`~repro.errors.CircuitBreakerOpen` while open."""
        with self._lock:
            if self._breaker_state != "open":
                return
            if now < self._breaker_open_until:
                remaining = self._breaker_open_until - now
                raise CircuitBreakerOpen(
                    f"session {self.id}'s circuit breaker is open for "
                    f"another {remaining:.3f}s after repeated failures",
                    retry_after_seconds=remaining)
            self._breaker_state = "half-open"

    def _breaker_note(self, ok: bool, now: float, threshold: int,
                      cooldown: float) -> None:
        """Record a finished query's outcome: success closes the
        breaker; ``threshold`` consecutive failures (or one failure of
        a half-open trial) open it for ``cooldown`` seconds."""
        with self._lock:
            if ok:
                self._breaker_state = "closed"
                self._breaker_failures = 0
                return
            self._breaker_failures += 1
            if self._breaker_state == "half-open" \
                    or self._breaker_failures >= threshold:
                self._breaker_state = "open"
                self._breaker_open_until = now + cooldown
                self._breaker_failures = 0

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Refuse further submissions; queries already admitted run to
        completion.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            connection, self._connection = self._connection, None
        if connection is not None:
            connection.close()
        self._service.sessions.forget(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self._closed else "open"
        return (f"<Session {self.id} {state} "
                f"in_flight={self._in_flight}>")


class SessionManager:
    """Creates, tracks and closes sessions for one service."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._sessions: dict[int, Session] = {}
        self._next_id = 1

    def create(self, service,
               defaults: Optional[SessionDefaults] = None) -> Session:
        with self._lock:
            session_id = self._next_id
            self._next_id += 1
            session = Session(service, session_id, defaults)
            self._sessions[session_id] = session
        return session

    def forget(self, session: Session) -> None:
        with self._lock:
            self._sessions.pop(session.id, None)

    def active(self) -> list[Session]:
        with self._lock:
            return list(self._sessions.values())

    def close_all(self) -> None:
        for session in self.active():
            session.close()
