"""Experiment harness reproducing every results table of both papers."""

from repro.bench.harness import (ExperimentResult, run_hagg_experiment,
                                 run_hpct_experiment, run_olap_experiment,
                                 run_vpct_experiment)
from repro.bench.workloads import (DMKD_QUERIES, SIGMOD_QUERIES,
                                   QuerySpec)

__all__ = [
    "DMKD_QUERIES",
    "ExperimentResult",
    "QuerySpec",
    "SIGMOD_QUERIES",
    "run_hagg_experiment",
    "run_hpct_experiment",
    "run_olap_experiment",
    "run_vpct_experiment",
]
