"""Incrementally-maintained materialized percentage views.

``CREATE MATERIALIZED VIEW v AS <query>`` snapshots a Vpct/Hpct or
plain group-by query as per-group partial-aggregate state plus a
derived result table.  DML on the base table adjusts only the touched
groups' state (delta maintenance with count-based retraction) and
re-derives only the result rows whose numerator or denominator group
changed; matching reads are answered from the view without touching
the base table.

* :mod:`repro.views.state` -- definition analysis and the per-group
  state layout (:class:`GroupLevel` / :class:`ViewState` /
  :class:`MaterializedView`).
* :mod:`repro.views.maintenance` -- full build plus the
  INSERT/UPDATE/DELETE delta paths (copy-on-maintain: published state
  is never mutated, so catalog savepoint rollback restores consistent
  view objects for free).
* :mod:`repro.views.rewrite` -- result derivation (bit-identical to
  the engine's own evaluation strategies) and query matching.
"""

from repro.views.maintenance import apply_dml, build_matview, refresh
from repro.views.rewrite import derive, match_view
from repro.views.state import (MaterializedView, ViewDefinition,
                               analyze_view)

__all__ = ["analyze_view", "apply_dml", "build_matview", "derive",
           "match_view", "refresh", "MaterializedView",
           "ViewDefinition"]
