"""Unit tests for the vectorized hash join."""

import numpy as np

from repro.engine.column import ColumnData
from repro.engine.join import join_indices, prepare_side, probe
from repro.engine.types import SQLType


def int_col(values):
    return ColumnData.from_values(SQLType.INTEGER, values)


def str_col(values):
    return ColumnData.from_values(SQLType.VARCHAR, values)


def pairs(left_idx, right_idx):
    return sorted(zip(left_idx.tolist(), right_idx.tolist()))


class TestInnerJoin:
    def test_one_to_one(self):
        left, right, _ = join_indices([int_col([1, 2, 3])],
                                      [int_col([2, 3, 4])], outer=False)
        assert pairs(left, right) == [(1, 0), (2, 1)]

    def test_one_to_many(self):
        left, right, _ = join_indices([int_col([7])],
                                      [int_col([7, 7, 8])], outer=False)
        assert pairs(left, right) == [(0, 0), (0, 1)]

    def test_many_to_many(self):
        left, right, _ = join_indices([int_col([1, 1])],
                                      [int_col([1, 1])], outer=False)
        assert len(left) == 4

    def test_no_matches(self):
        left, right, _ = join_indices([int_col([1])], [int_col([2])],
                                      outer=False)
        assert len(left) == 0

    def test_multi_column_keys(self):
        left, right, _ = join_indices(
            [int_col([1, 1, 2]), str_col(["a", "b", "a"])],
            [int_col([1, 2]), str_col(["b", "a"])], outer=False)
        assert pairs(left, right) == [(1, 0), (2, 1)]

    def test_nulls_never_match(self):
        left, right, _ = join_indices([int_col([None, 1])],
                                      [int_col([None, 1])], outer=False)
        assert pairs(left, right) == [(1, 1)]


class TestLeftOuterJoin:
    def test_unmatched_rows_get_minus_one(self):
        left, right, _ = join_indices([int_col([1, 5])],
                                      [int_col([1])], outer=True)
        assert pairs(left, right) == [(0, 0), (1, -1)]

    def test_null_probe_key_unmatched(self):
        left, right, _ = join_indices([int_col([None])],
                                      [int_col([None])], outer=True)
        assert pairs(left, right) == [(0, -1)]

    def test_every_probe_row_appears(self):
        left, right, _ = join_indices([int_col([9, 9, 1])],
                                      [int_col([1])], outer=True)
        assert sorted(left.tolist()) == [0, 1, 2]


class TestPreparedReuse:
    def test_prepared_side_reused_across_probes(self):
        prepared = prepare_side([int_col([1, 2, 3])])
        left1, right1 = probe(prepared, [int_col([2])], outer=False)
        left2, right2 = probe(prepared, [int_col([3])], outer=False)
        assert right1.tolist() == [1]
        assert right2.tolist() == [2]

    def test_prepared_excludes_null_build_rows(self):
        prepared = prepare_side([int_col([None, 1])])
        assert prepared.n_rows == 2
        left, right = probe(prepared, [int_col([1])], outer=False)
        assert right.tolist() == [1]

    def test_empty_build_side(self):
        prepared = prepare_side([int_col([])])
        left, right = probe(prepared, [int_col([1, 2])], outer=True)
        assert right.tolist() == [-1, -1]

    def test_join_indices_returns_prepared(self):
        _, _, prepared = join_indices([int_col([1])], [int_col([1])],
                                      outer=False)
        left, right = probe(prepared, [int_col([1])], outer=False)
        assert right.tolist() == [0]
