"""Parser + formatter coverage for GROUP BY CUBE / ROLLUP / GROUPING
SETS, and the pinned typed errors that name the offending set."""

import pytest

from repro.errors import GroupingSetError, SQLSyntaxError
from repro.sql import ast
from repro.sql.formatter import format_statement
from repro.sql.parser import parse_statement

ROUND_TRIPS = [
    "SELECT d1, sum(m) FROM t GROUP BY CUBE (d1, d2)",
    "SELECT d1, sum(m) FROM t GROUP BY ROLLUP (d1, d2, d3)",
    "SELECT d1, sum(m) FROM t GROUP BY GROUPING SETS ((d1, d2), (d1), ())",
    "SELECT d1, sum(m) FROM t GROUP BY d3, CUBE (d1, d2)",
    "SELECT d1, sum(m) FROM t GROUP BY ROLLUP (d1), GROUPING SETS ((d2), ())",
    "SELECT grouping(d1, d2), count(*) FROM t GROUP BY CUBE (d1, d2)",
    "SELECT d1, pct(m) FROM t GROUP BY ROLLUP (d1, d2)",
    "SELECT d1, sum(m) FROM t GROUP BY CUBE (d1, d2) HAVING count(*) > 1",
]


@pytest.mark.parametrize("sql", ROUND_TRIPS)
def test_round_trip(sql):
    statement = parse_statement(sql)
    rendered = format_statement(statement)
    assert rendered == sql
    assert format_statement(parse_statement(rendered)) == sql


def test_cube_parses_to_construct():
    statement = parse_statement(
        "SELECT d1 FROM t GROUP BY d3, CUBE (d1, d2)")
    plain, cube = statement.group_by
    assert isinstance(plain, ast.ColumnRef) and plain.name == "d3"
    assert isinstance(cube, ast.Cube)
    assert [e.name for e in cube.exprs] == ["d1", "d2"]
    assert ast.has_grouping_sets(statement)


def test_grouping_sets_keeps_set_order_and_empty_set():
    statement = parse_statement(
        "SELECT 1 FROM t GROUP BY GROUPING SETS ((d2, d1), (), (d1))")
    (sets,) = statement.group_by
    assert isinstance(sets, ast.GroupingSets)
    assert [tuple(e.name for e in s) for s in sets.sets] == [
        ("d2", "d1"), (), ("d1",)]


def test_plain_group_by_is_not_grouping_sets():
    statement = parse_statement("SELECT d1 FROM t GROUP BY d1, d2")
    assert not ast.has_grouping_sets(statement)


def test_cube_and_rollup_still_work_as_column_names():
    """CUBE/ROLLUP are contextual keywords: only a following ``(``
    makes them constructs, so legacy schemas with such columns keep
    parsing."""
    statement = parse_statement(
        "SELECT cube, rollup FROM t GROUP BY cube, rollup")
    assert [e.name for e in statement.group_by] == ["cube", "rollup"]
    assert not ast.has_grouping_sets(statement)


def test_grouping_still_works_as_column_name():
    statement = parse_statement("SELECT grouping FROM t GROUP BY grouping")
    assert isinstance(statement.group_by[0], ast.ColumnRef)


# -- pinned typed errors -----------------------------------------------
@pytest.mark.parametrize("sql, message, named_set", [
    ("SELECT 1 FROM t GROUP BY CUBE()",
     "CUBE requires at least one expression", "CUBE ()"),
    ("SELECT 1 FROM t GROUP BY ROLLUP()",
     "ROLLUP requires at least one expression", "ROLLUP ()"),
    ("SELECT 1 FROM t GROUP BY GROUPING SETS ()",
     "GROUPING SETS requires at least one grouping set",
     "GROUPING SETS ()"),
    ("SELECT 1 FROM t GROUP BY GROUPING SETS ((d1, d2), (d1), (d1, d2))",
     "duplicate grouping set", "(d1, d2)"),
    ("SELECT 1 FROM t GROUP BY CUBE(d1, d2, d1)",
     "duplicate expression d1 in CUBE", "(d1, d2, d1)"),
    ("SELECT 1 FROM t GROUP BY ROLLUP(d2, d2)",
     "duplicate expression d2 in ROLLUP", "(d2, d2)"),
    ("SELECT 1 FROM t GROUP BY GROUPING SETS ((d1, d1))",
     "duplicate expression d1 in grouping set", "(d1, d1)"),
])
def test_malformed_constructs_name_the_offending_set(sql, message,
                                                     named_set):
    with pytest.raises(GroupingSetError) as excinfo:
        parse_statement(sql)
    assert message in str(excinfo.value)
    assert excinfo.value.grouping_set == named_set


def test_grouping_set_error_is_catchable_as_planning_error():
    from repro.errors import PlanningError

    with pytest.raises(PlanningError):
        parse_statement("SELECT 1 FROM t GROUP BY CUBE()")


@pytest.mark.parametrize("sql", [
    "SELECT 1 FROM t GROUP BY CUBE(d1",       # unclosed construct
    "SELECT 1 FROM t GROUP BY GROUPING SETS", # missing list
    "SELECT 1 FROM t GROUP BY GROUPING SETS ((d1)",
])
def test_malformed_syntax_still_raises_syntax_error(sql):
    with pytest.raises(SQLSyntaxError):
        parse_statement(sql)
