"""Vertical partitioning of wide horizontal results.

Horizontal aggregations can exceed the DBMS's maximum column count when
the BY columns have many distinct combinations or several horizontal
terms share one query.  "The only way there is to solve this limitation
is by vertically partitioning the columns so that the maximum number of
columns is not exceeded.  Each partition table has D1, ..., Dj as its
primary key" (Section 3.2; also DMKD Section 3.6).

:func:`split_result_columns` computes the partition layout; the
horizontal generator emits one CREATE + INSERT per partition and a
final assembling SELECT that joins the partitions back on the keys.
"""

from __future__ import annotations

from typing import Sequence, TypeVar

from repro.errors import PercentageQueryError

ColumnT = TypeVar("ColumnT")


def split_result_columns(n_keys: int, columns: Sequence[ColumnT],
                         max_columns: int) -> list[list[ColumnT]]:
    """Partition the non-key result columns so every stored table fits
    within ``max_columns`` (keys included in each partition).

    Returns at least one partition; raises when even a single non-key
    column cannot fit next to the keys.
    """
    capacity = max_columns - n_keys
    if capacity < 1:
        raise PercentageQueryError(
            f"the {n_keys} grouping columns alone reach the DBMS "
            f"column limit ({max_columns}); no room for results")
    if len(columns) <= capacity:
        return [list(columns)]
    partitions: list[list[ColumnT]] = []
    for start in range(0, len(columns), capacity):
        partitions.append(list(columns[start:start + capacity]))
    return partitions
