"""Torn-page detection: corruption of a committed page must surface
at reopen as a typed :class:`PageCorruptError` naming the page --
never as silently wrong query results."""

import json
import os

import pytest

from repro import Database
from repro.errors import PageCorruptError
from repro.storage.engine import live_store_paths
from repro.storage.pages import HEADER_SIZE
from tests.conftest import PAPER_SALES_ROWS

PAGE_SIZE = 256


def _build_store(path):
    with Database(storage="disk", storage_path=str(path),
                  pool_pages=4, page_size=PAGE_SIZE) as db:
        db.load_table(
            "sales",
            [("rid", "int"), ("state", "varchar"),
             ("city", "varchar"), ("salesamt", "real")],
            PAPER_SALES_ROWS, primary_key=["rid"])


def _live_page(path, column="salesamt"):
    with open(os.path.join(path, "checkpoint.json")) as handle:
        state = json.load(handle)
    return state["tables"]["sales"]["pages"][column][0]


def _flip_bytes(path, page_id, offset, count=4):
    with open(os.path.join(path, "data.pages"), "r+b") as handle:
        handle.seek(page_id * PAGE_SIZE + offset)
        original = handle.read(count)
        handle.seek(page_id * PAGE_SIZE + offset)
        handle.write(bytes(b ^ 0xFF for b in original))


def _reopen(path):
    return Database(storage="disk", storage_path=str(path),
                    pool_pages=4, page_size=PAGE_SIZE)


def test_flipped_payload_bytes_detected_at_reopen(tmp_path):
    _build_store(tmp_path)
    page_id = _live_page(tmp_path)
    _flip_bytes(tmp_path, page_id, HEADER_SIZE + 2)
    with pytest.raises(PageCorruptError,
                       match=f"page {page_id} failed its checksum"):
        _reopen(tmp_path)
    # The failed open must not leak the half-open store.
    assert live_store_paths() == []


def test_corrupted_header_detected_at_reopen(tmp_path):
    _build_store(tmp_path)
    page_id = _live_page(tmp_path, column="rid")
    _flip_bytes(tmp_path, page_id, 0)  # smash the magic
    with pytest.raises(PageCorruptError,
                       match=f"page {page_id} has bad magic"):
        _reopen(tmp_path)
    assert live_store_paths() == []


def test_truncated_data_file_detected_at_reopen(tmp_path):
    _build_store(tmp_path)
    data = os.path.join(tmp_path, "data.pages")
    with open(data, "r+b") as handle:
        handle.truncate(os.path.getsize(data) - PAGE_SIZE // 2)
    with pytest.raises(PageCorruptError, match="torn"):
        _reopen(tmp_path)
    assert live_store_paths() == []


def test_corruption_in_garbage_pages_is_harmless(tmp_path):
    """Only *live* pages are verified: a superseded shadow page can
    rot freely (it will be reclaimed at the next checkpoint)."""
    with Database(storage="disk", storage_path=str(tmp_path),
                  pool_pages=4, page_size=PAGE_SIZE) as db:
        db.load_table(
            "sales",
            [("rid", "int"), ("state", "varchar"),
             ("city", "varchar"), ("salesamt", "real")],
            PAPER_SALES_ROWS, primary_key=["rid"])
        db.execute("UPDATE sales SET salesamt = 1.0 WHERE rid = 1")
        expected = db.query("SELECT * FROM sales ORDER BY rid")
        live = set()
        for name in db.table_names():
            for ids in db.table(name).page_map().values():
                live |= set(ids)
        allocated = db.storage_engine.disk.next_page_id
    garbage = [p for p in range(allocated) if p not in live]
    assert garbage, "UPDATE must have superseded at least one page"
    _flip_bytes(tmp_path, garbage[0], HEADER_SIZE + 1)
    with _reopen(tmp_path) as db:
        assert db.query("SELECT * FROM sales ORDER BY rid") == expected
