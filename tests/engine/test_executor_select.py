"""Integration-grade unit tests for SELECT execution through the full
parser -> planner -> executor pipeline."""

import pytest

from repro import Database
from repro.errors import PlanningError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (a INT, b VARCHAR, c REAL)")
    database.execute(
        "INSERT INTO t VALUES (1, 'x', 10.0), (2, 'y', 20.0), "
        "(1, 'y', 30.0), (3, NULL, NULL)")
    return database


class TestProjection:
    def test_select_star(self, db):
        assert len(db.query("SELECT * FROM t")) == 4

    def test_expression_projection(self, db):
        rows = db.query("SELECT a * 2 + 1 FROM t ORDER BY 1")
        assert rows == [(3,), (3,), (5,), (7,)]

    def test_aliases_name_output(self, db):
        result = db.execute("SELECT a AS alpha FROM t")
        assert result.column_names() == ["alpha"]

    def test_where_filter(self, db):
        rows = db.query("SELECT a FROM t WHERE b = 'y' ORDER BY 1")
        assert rows == [(1,), (2,)]

    def test_where_null_comparison_filters_out(self, db):
        # b = NULL is never true; the NULL row must not appear.
        assert db.query("SELECT a FROM t WHERE b <> 'zzz'") != []
        assert (3,) not in db.query("SELECT a FROM t WHERE b <> 'zzz'")

    def test_select_without_from(self, db):
        assert db.query("SELECT 1 + 1") == [(2,)]

    def test_duplicate_output_names_deduped(self, db):
        result = db.execute("SELECT a, a FROM t")
        assert result.column_names() == ["a", "a_1"]


class TestDistinctOrderLimit:
    def test_distinct(self, db):
        rows = db.query("SELECT DISTINCT a FROM t ORDER BY a")
        assert rows == [(1,), (2,), (3,)]

    def test_distinct_multi_column(self, db):
        rows = db.query("SELECT DISTINCT a, b FROM t")
        assert len(rows) == 4

    def test_order_desc(self, db):
        rows = db.query("SELECT a FROM t ORDER BY a DESC, c")
        assert [r[0] for r in rows] == [3, 2, 1, 1]

    def test_order_by_position(self, db):
        rows = db.query("SELECT c FROM t ORDER BY 1")
        assert rows[0] == (None,)  # engine sorts NULLs first

    def test_limit(self, db):
        assert len(db.query("SELECT a FROM t ORDER BY a LIMIT 2")) == 2


class TestAggregation:
    def test_group_by(self, db):
        rows = db.query(
            "SELECT a, sum(c) FROM t GROUP BY a ORDER BY a")
        assert rows == [(1, 40.0), (2, 20.0), (3, None)]

    def test_group_by_position(self, db):
        rows = db.query("SELECT a, count(*) FROM t GROUP BY 1 "
                        "ORDER BY 1")
        assert rows == [(1, 2), (2, 1), (3, 1)]

    def test_global_aggregate(self, db):
        assert db.query("SELECT count(*), sum(a) FROM t") == [(4, 7)]

    def test_global_aggregate_on_empty_table(self, db):
        db.execute("CREATE TABLE e (x INT)")
        assert db.query("SELECT count(*), sum(x) FROM e") == [(0, None)]

    def test_group_by_empty_table_yields_no_rows(self, db):
        db.execute("CREATE TABLE e (x INT, y INT)")
        assert db.query("SELECT x, sum(y) FROM e GROUP BY x") == []

    def test_aggregate_expression(self, db):
        rows = db.query("SELECT a, sum(c) / count(c) FROM t "
                        "WHERE c IS NOT NULL GROUP BY a ORDER BY a")
        assert rows == [(1, 20.0), (2, 20.0)]

    def test_having(self, db):
        rows = db.query("SELECT a, count(*) FROM t GROUP BY a "
                        "HAVING count(*) > 1")
        assert rows == [(1, 2)]

    def test_ungrouped_column_raises(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT b, sum(c) FROM t GROUP BY a")

    def test_qualified_and_bare_group_refs_unify(self, db):
        rows = db.query("SELECT t.a, sum(c) FROM t GROUP BY a "
                        "ORDER BY 1")
        assert len(rows) == 3

    def test_duplicate_aggregates_computed_once(self, db):
        rows = db.query("SELECT sum(c), sum(c) FROM t")
        assert rows == [(60.0, 60.0)]

    def test_count_distinct(self, db):
        assert db.query("SELECT count(DISTINCT a) FROM t") == [(3,)]


class TestJoins:
    @pytest.fixture
    def joined(self, db):
        db.execute("CREATE TABLE d (a INT, label VARCHAR)")
        db.execute("INSERT INTO d VALUES (1, 'one'), (2, 'two')")
        return db

    def test_comma_join_with_where(self, joined):
        rows = joined.query(
            "SELECT t.a, d.label FROM t, d WHERE t.a = d.a "
            "ORDER BY t.a, d.label")
        assert rows == [(1, "one"), (1, "one"), (2, "two")]

    def test_explicit_inner_join(self, joined):
        rows = joined.query(
            "SELECT t.a, d.label FROM t JOIN d ON t.a = d.a "
            "ORDER BY 1, 2")
        assert len(rows) == 3

    def test_left_outer_join(self, joined):
        rows = joined.query(
            "SELECT t.a, d.label FROM t LEFT OUTER JOIN d "
            "ON t.a = d.a ORDER BY 1")
        assert (3, None) in rows

    def test_join_extra_predicate(self, joined):
        rows = joined.query(
            "SELECT t.a FROM t, d WHERE t.a = d.a AND t.c > 15 "
            "ORDER BY 1")
        assert rows == [(1,), (2,)]

    def test_cartesian_product(self, joined):
        rows = joined.query("SELECT t.a, d.a FROM t, d")
        assert len(rows) == 8

    def test_derived_table(self, db):
        rows = db.query(
            "SELECT q.a, q.total FROM "
            "(SELECT a, sum(c) AS total FROM t GROUP BY a) q "
            "WHERE q.total > 25 ORDER BY 1")
        assert rows == [(1, 40.0)]

    def test_self_join_with_aliases(self, db):
        rows = db.query(
            "SELECT x.a, y.a FROM t x, t y "
            "WHERE x.a = y.a AND x.b = 'x' AND y.b = 'y'")
        assert rows == [(1, 1)]


class TestWindowQueries:
    def test_window_over_detail(self, db):
        rows = db.query(
            "SELECT a, c / sum(c) OVER (PARTITION BY a) FROM t "
            "WHERE c IS NOT NULL ORDER BY a, c")
        assert rows[0] == (1, 0.25)
        assert rows[1] == (1, 0.75)

    def test_window_over_aggregate(self, db):
        rows = db.query(
            "SELECT a, sum(c) / sum(sum(c)) OVER () FROM t "
            "WHERE c IS NOT NULL GROUP BY a ORDER BY a")
        assert [round(r[1], 4) for r in rows] == [0.6667, 0.3333]

    def test_distinct_window_percentage(self, db):
        rows = db.query(
            "SELECT DISTINCT a, sum(c) OVER (PARTITION BY a) "
            "/ sum(c) OVER () FROM t WHERE c IS NOT NULL ORDER BY a")
        assert len(rows) == 2


class TestErrors:
    def test_extended_syntax_rejected_by_engine(self, db):
        with pytest.raises(PlanningError) as err:
            db.query("SELECT a, Vpct(c BY a) FROM t GROUP BY a")
        assert "repro.core" in str(err.value)

    def test_unknown_table(self, db):
        from repro.errors import CatalogError
        with pytest.raises(CatalogError):
            db.query("SELECT * FROM ghost")

    def test_unknown_column(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT ghost FROM t")

    def test_having_without_group(self, db):
        with pytest.raises(PlanningError):
            db.query("SELECT a FROM t HAVING a > 1")
