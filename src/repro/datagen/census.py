"""A synthetic stand-in for the companion paper's UCI US-census data.

The paper used "a collection of records from the US Census ... 68
columns representing a combination of numeric and categorical
attributes and ... n = 200,000 rows.  This was a medium data set with
dimension of different cardinalities and skewed value distributions"
(DMKD Section 4.1).

The real extract is not redistributable offline, so this generator
produces a table with the same *relevant* structure: 68 columns, the
five attributes the experiments group on (``ischool``, ``iclass``,
``imarital``, ``isex`` -- categorical with census-like cardinalities --
and ``dage``, a numeric age), Zipf-skewed value distributions, plus
filler attributes and a numeric measure.  DESIGN.md records this
substitution.
"""

from __future__ import annotations

import numpy as np

from repro.api.database import Database
from repro.datagen import distributions as dist
from repro.engine.table import Table

#: The paper's scale.
PAPER_N = 200_000

#: Cardinalities of the attributes the experiments use (chosen to match
#: the real census fields: schooling 15 levels, class-of-worker 9,
#: marital status 7, sex 2, age 0-90).
CARDINALITIES = {"ischool": 15, "iclass": 9, "imarital": 7, "isex": 2,
                 "dage": 91}

#: Total column count of the paper's extract.
N_COLUMNS = 68


def load_census(db: Database, n_rows: int = 50_000,
                seed: int = 19940401, name: str = "uscensus",
                replace: bool = True) -> Table:
    """Generate and load the census-like table (default 1/4 of paper
    scale)."""
    rng = np.random.default_rng(seed)
    data = {
        "rid": dist.sequence(n_rows),
        "ischool": dist.zipf_dimension(rng, n_rows,
                                       CARDINALITIES["ischool"], 0.9),
        "iclass": dist.zipf_dimension(rng, n_rows,
                                      CARDINALITIES["iclass"], 1.2),
        "imarital": dist.zipf_dimension(rng, n_rows,
                                        CARDINALITIES["imarital"], 1.0),
        "isex": dist.uniform_dimension(rng, n_rows,
                                       CARDINALITIES["isex"]),
        "dage": dist.zipf_dimension(rng, n_rows, CARDINALITIES["dage"],
                                    0.3, base=0),
        "wage": np.round(dist.uniform_measure(rng, n_rows, 0.0,
                                              5_000.0), 2),
    }
    columns = [("rid", "int"), ("ischool", "int"), ("iclass", "int"),
               ("imarital", "int"), ("isex", "int"), ("dage", "int"),
               ("wage", "real")]
    # Filler attributes bring the width to the paper's 68 columns with
    # mixed cardinalities and skews.
    filler_count = N_COLUMNS - len(columns)
    for i in range(filler_count):
        column = f"attr{i + 1:02d}"
        cardinality = int(2 + (i * 7) % 50)
        skew = 0.5 + (i % 5) * 0.25
        data[column] = dist.zipf_dimension(rng, n_rows, cardinality,
                                           skew)
        columns.append((column, "int"))
    if replace:
        db.drop_table(name, if_exists=True)
    return db.load_table(name, columns, data, primary_key=["rid"])
