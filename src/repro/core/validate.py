"""Usage-rule validation for percentage queries.

Implements the rules of Section 3.1 (``Vpct``), Section 3.2 (``Hpct``)
and the companion paper's Section 3.1 (generalized horizontal
aggregations), with the paper's stated relaxations:

Vpct (Section 3.1):
  (1) GROUP BY is required (two-level aggregation needs it).
  (2) BY is optional; when present its columns must be a subset of the
      GROUP BY columns.  (The text says "proper subset ... as many as
      k-1 columns" but immediately discusses the BY == GROUP BY case,
      "each row will have 100%", so equality is accepted here.)
  (3) Vpct may be combined with other aggregates on the same GROUP BY.
  (4) Multiple Vpct terms may use different BY subsets.

Hpct (Section 3.2):
  (1) GROUP BY is optional.
  (2) BY is required, non-empty, and disjoint from GROUP BY.
  (3)-(5) other aggregates on the same grouping, any column order,
      multiple Hpct terms with different (disjoint) BY lists.

Hagg (DMKD Section 3.1): same shape as Hpct; additionally the argument
is required (count(*) is expressed as count(1 BY ...)-style calls are
not needed -- plain ``count(*)`` stays vertical), and DEFAULT must be a
literal.

Mixing vertical and horizontal percentage aggregations in one query is
rejected: the paper lists it under future work ("Combining horizontal
and vertical percentage aggregations on the same query creates new
challenges for query optimization", Section 6).
"""

from __future__ import annotations

from repro.core import model
from repro.errors import PercentageQueryError


def validate(query: model.PercentageQuery) -> None:
    """Raise :class:`PercentageQueryError` on any rule violation."""
    _validate_dimensions(query)
    if query.has_vertical_pct and query.has_horizontal:
        raise PercentageQueryError(
            "combining Vpct() with horizontal aggregations in one query "
            "is future work in the paper and is not supported")
    for term in query.terms:
        if term.kind == model.VPCT:
            _validate_vpct(term, query)
        elif term.is_horizontal:
            _validate_horizontal(term, query)
        else:
            _validate_vertical(term, query)
    if query.has_horizontal:
        _validate_horizontal_query(query)


def _validate_dimensions(query: model.PercentageQuery) -> None:
    group_set = set(query.group_by)
    for dim in query.dimensions:
        if dim not in group_set:
            raise PercentageQueryError(
                f"select column {dim!r} must appear in GROUP BY")


def _validate_vpct(term: model.AggregateTerm,
                   query: model.PercentageQuery) -> None:
    if not query.group_by:
        raise PercentageQueryError(
            "Vpct() requires a GROUP BY clause (rule 1): two-level "
            "aggregation needs the fine grouping")
    group_set = set(query.group_by)
    for column in term.by_columns:
        if column not in group_set:
            raise PercentageQueryError(
                f"Vpct() BY column {column!r} must be a subset of the "
                f"GROUP BY columns (rule 2)")
    if term.default is not None:
        raise PercentageQueryError("Vpct() does not accept DEFAULT")


def _validate_horizontal(term: model.AggregateTerm,
                         query: model.PercentageQuery) -> None:
    name = term.func if term.kind == model.HAGG else "Hpct"
    if not term.by_columns:
        raise PercentageQueryError(
            f"{name}() requires a non-empty BY clause (rule 2)")
    overlap = set(term.by_columns) & set(query.group_by)
    if overlap:
        raise PercentageQueryError(
            f"{name}() BY columns must be disjoint from GROUP BY "
            f"(rule 2); offending: {sorted(overlap)}")
    if term.kind == model.HPCT and term.default is not None:
        raise PercentageQueryError(
            "Hpct() does not accept DEFAULT (percentages for missing "
            "cells are 0 by construction)")
    if term.kind == model.HAGG and term.argument is None:
        raise PercentageQueryError(
            f"{term.func}(* BY ...) is not valid; the argument is "
            f"required (rule 4) -- use count(1 BY ...) for row counts")
    if term.distinct and term.func != "count":
        raise PercentageQueryError(
            "DISTINCT is only supported with count()")


def _validate_vertical(term: model.AggregateTerm,
                       query: model.PercentageQuery) -> None:
    if term.distinct and term.func != "count":
        raise PercentageQueryError(
            "DISTINCT is only supported with count()")
    if term.default is not None:
        raise PercentageQueryError(
            f"DEFAULT is only meaningful with a BY clause "
            f"({term.func}() here is a plain vertical aggregate)")


def _validate_horizontal_query(query: model.PercentageQuery) -> None:
    """Whole-query checks for the horizontal form: plain aggregates are
    allowed (they share the D1..Dj grouping -- rule 3), and every
    dimension column must be a grouping column (already checked)."""
    for term in query.plain_terms():
        # Nothing further: plain terms aggregate over D1..Dj directly.
        _ = term
