"""Recursive-descent parser for the SQL subset plus the paper's
extension syntax.

Grammar highlights:

* ``SELECT [DISTINCT] items FROM sources [WHERE] [GROUP BY] [HAVING]
  [ORDER BY] [LIMIT]`` with comma joins and ``[INNER|LEFT [OUTER]]
  JOIN ... ON``.
* ``GROUP BY 1, 2`` positional references (used throughout the
  companion paper) parse as integer literals; the planner resolves
  them against the select list.
* Aggregate calls accept the paper's extensions:
  ``Vpct(A BY D1, D2)``, ``Hpct(A BY D1)``,
  ``sum(A BY D1 DEFAULT 0)``, and ``OVER (PARTITION BY ...)``.
* ``CREATE TABLE t (...) [PRIMARY KEY (...)]`` accepts the primary key
  inside or after the column list (the paper writes the Teradata-style
  trailing form).
"""

from __future__ import annotations

from typing import Optional

from repro.errors import GroupingSetError, SQLSyntaxError
from repro.sql import ast
from repro.sql.tokens import Token, TokenType, tokenize


def _render_set(exprs: tuple[ast.Expr, ...]) -> str:
    """Render a grouping set for error messages, e.g. ``(d1, d2)``."""
    from repro.sql.formatter import format_expr
    return "(" + ", ".join(format_expr(e) for e in exprs) + ")"


def parse_statement(text: str) -> ast.Statement:
    """Parse exactly one SQL statement (a trailing ';' is allowed)."""
    parser = _Parser(tokenize(text))
    statement = parser.statement()
    parser.accept_symbol(";")
    parser.expect_end()
    return statement


def parse_script(text: str) -> list[ast.Statement]:
    """Parse a ';'-separated sequence of statements."""
    parser = _Parser(tokenize(text))
    statements: list[ast.Statement] = []
    while not parser.at_end():
        statements.append(parser.statement())
        if not parser.accept_symbol(";"):
            break
    parser.expect_end()
    return statements


def parse_expression(text: str) -> ast.Expr:
    """Parse a standalone scalar expression (for tests and tools)."""
    parser = _Parser(tokenize(text))
    expr = parser.expression()
    parser.expect_end()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------
    # Token plumbing
    # ------------------------------------------------------------------
    def peek(self, offset: int = 0) -> Token:
        return self._tokens[min(self._pos + offset,
                                len(self._tokens) - 1)]

    def advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type != TokenType.END:
            self._pos += 1
        return token

    def at_end(self) -> bool:
        return self.peek().type == TokenType.END

    def error(self, message: str) -> SQLSyntaxError:
        token = self.peek()
        return SQLSyntaxError(message, token.line, token.column)

    def accept_keyword(self, *keywords: str) -> Optional[str]:
        token = self.peek()
        for keyword in keywords:
            if token.matches_keyword(keyword):
                self.advance()
                return keyword.upper()
        return None

    def expect_keyword(self, keyword: str) -> None:
        if not self.accept_keyword(keyword):
            raise self.error(f"expected {keyword}, got "
                             f"{self._describe(self.peek())}")

    def peek_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return any(token.matches_keyword(k) for k in keywords)

    def accept_symbol(self, symbol: str) -> bool:
        token = self.peek()
        if token.type == TokenType.SYMBOL and token.value == symbol:
            self.advance()
            return True
        return False

    def expect_symbol(self, symbol: str) -> None:
        if not self.accept_symbol(symbol):
            raise self.error(f"expected {symbol!r}, got "
                             f"{self._describe(self.peek())}")

    def peek_symbol(self, symbol: str, offset: int = 0) -> bool:
        token = self.peek(offset)
        return token.type == TokenType.SYMBOL and token.value == symbol

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.peek()
        if token.type != TokenType.IDENT:
            raise self.error(f"expected {what}, got "
                             f"{self._describe(token)}")
        self.advance()
        return token.value

    def expect_end(self) -> None:
        if not self.at_end():
            raise self.error(f"unexpected trailing input: "
                             f"{self._describe(self.peek())}")

    @staticmethod
    def _describe(token: Token) -> str:
        if token.type == TokenType.END:
            return "end of input"
        return repr(token.value)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def statement(self) -> ast.Statement:
        if self.accept_keyword("EXPLAIN"):
            analyze = bool(self.accept_keyword("ANALYZE"))
            return ast.Explain(self.statement(), analyze=analyze)
        if self.peek_keyword("SELECT"):
            return self.select()
        if self.peek_keyword("CREATE"):
            return self._create()
        if self.peek_keyword("DROP"):
            return self._drop()
        if self.peek_keyword("INSERT"):
            return self._insert()
        if self.peek_keyword("UPDATE"):
            return self._update()
        if self.peek_keyword("DELETE"):
            return self._delete()
        if self.accept_keyword("REFRESH"):
            self.expect_keyword("MATERIALIZED")
            self.expect_keyword("VIEW")
            name = self.expect_ident("view name")
            return ast.RefreshMaterializedView(name)
        raise self.error("expected a SQL statement")

    # -- SELECT ---------------------------------------------------------
    def select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        if self.accept_keyword("ALL"):
            distinct = False
        items = [self._select_item()]
        while self.accept_symbol(","):
            items.append(self._select_item())

        from_clause = None
        if self.accept_keyword("FROM"):
            from_clause = self._from_clause()
        where = self.expression() if self.accept_keyword("WHERE") else None
        group_by: tuple[ast.Expr, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by = tuple(self._group_by_list())
        having = self.expression() if self.accept_keyword("HAVING") \
            else None
        order_by: tuple[ast.OrderItem, ...] = ()
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by = tuple(self._order_items())
        limit = None
        if self.accept_keyword("LIMIT"):
            token = self.peek()
            if token.type != TokenType.NUMBER or \
                    not isinstance(token.value, int):
                raise self.error("LIMIT requires an integer")
            self.advance()
            limit = token.value
        return ast.Select(items=tuple(items), from_=from_clause,
                          where=where, group_by=group_by, having=having,
                          order_by=order_by, limit=limit,
                          distinct=distinct)

    def _select_item(self) -> ast.SelectItem:
        if self.peek_symbol("*"):
            self.advance()
            return ast.SelectItem(ast.Star())
        # t.* form
        if (self.peek().type == TokenType.IDENT
                and self.peek_symbol(".", 1) and self.peek_symbol("*", 2)):
            table = self.expect_ident()
            self.advance()  # .
            self.advance()  # *
            return ast.SelectItem(ast.Star(table=table))
        expr = self.expression()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("alias")
        elif (self.peek().type == TokenType.IDENT
              and not self._is_clause_boundary(self.peek())):
            alias = self.expect_ident("alias")
        return ast.SelectItem(expr, alias)

    _CLAUSE_KEYWORDS = frozenset({
        "FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "ON",
        "JOIN", "INNER", "LEFT", "RIGHT", "FULL", "OUTER", "AND", "OR",
        "UNION", "SET", "VALUES", "BY", "AS", "DEFAULT", "OVER",
        "PRIMARY", "ELSE", "END", "WHEN", "THEN"})

    def _is_clause_boundary(self, token: Token) -> bool:
        return (isinstance(token.value, str)
                and not token.quoted
                and token.value.upper() in self._CLAUSE_KEYWORDS)

    def _from_clause(self) -> ast.FromClause:
        first = self._from_source()
        joins: list[ast.JoinStep] = []
        while True:
            if self.accept_symbol(","):
                joins.append(ast.JoinStep("cross", self._from_source()))
                continue
            kind = self._join_kind()
            if kind is None:
                break
            source = self._from_source()
            self.expect_keyword("ON")
            condition = self.expression()
            joins.append(ast.JoinStep(kind, source, condition))
        return ast.FromClause(first, tuple(joins))

    def _join_kind(self) -> Optional[str]:
        if self.accept_keyword("JOIN"):
            return "inner"
        if self.peek_keyword("INNER"):
            self.advance()
            self.expect_keyword("JOIN")
            return "inner"
        if self.peek_keyword("LEFT"):
            self.advance()
            self.accept_keyword("OUTER")
            self.expect_keyword("JOIN")
            return "left"
        return None

    def _from_source(self) -> ast.FromSource:
        if self.accept_symbol("("):
            select = self.select()
            self.expect_symbol(")")
            self.accept_keyword("AS")
            alias = self.expect_ident("derived-table alias")
            return ast.SubquerySource(select, alias)
        name = self.expect_ident("table name")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("alias")
        elif (self.peek().type == TokenType.IDENT
              and not self._is_clause_boundary(self.peek())):
            alias = self.expect_ident("alias")
        return ast.TableRef(name, alias)

    def _expression_list(self) -> list[ast.Expr]:
        exprs = [self.expression()]
        while self.accept_symbol(","):
            exprs.append(self.expression())
        return exprs

    # -- GROUP BY grouping elements -------------------------------------
    def _group_by_list(self) -> list[ast.Expr]:
        elements = [self._group_by_element()]
        while self.accept_symbol(","):
            elements.append(self._group_by_element())
        return elements

    def _group_by_element(self) -> ast.Expr:
        """One GROUP BY element: ``CUBE (...)``, ``ROLLUP (...)``,
        ``GROUPING SETS (...)`` or a plain expression.  CUBE/ROLLUP/
        GROUPING stay contextual keywords -- they only take effect when
        followed by the construct's parenthesis, so columns named
        ``cube`` etc. keep working everywhere else."""
        if self.peek_keyword("CUBE") and self.peek_symbol("(", 1):
            self.advance()
            return ast.Cube(self._construct_columns("CUBE"))
        if self.peek_keyword("ROLLUP") and self.peek_symbol("(", 1):
            self.advance()
            return ast.Rollup(self._construct_columns("ROLLUP"))
        if self.peek_keyword("GROUPING") and self.peek(1).matches_keyword("SETS") \
                and self.peek_symbol("(", 2):
            self.advance()
            self.advance()
            return self._grouping_sets()
        return self.expression()

    def _construct_columns(self, construct: str) -> tuple[ast.Expr, ...]:
        """The parenthesized expression list of CUBE/ROLLUP, validated
        non-empty and duplicate-free (typed errors name the set)."""
        self.expect_symbol("(")
        if self.accept_symbol(")"):
            raise GroupingSetError(
                f"{construct} requires at least one expression",
                f"{construct} ()")
        exprs = tuple(self._expression_list())
        self.expect_symbol(")")
        self._check_set_duplicates(exprs, construct)
        return exprs

    def _grouping_sets(self) -> ast.GroupingSets:
        self.expect_symbol("(")
        if self.accept_symbol(")"):
            raise GroupingSetError(
                "GROUPING SETS requires at least one grouping set",
                "GROUPING SETS ()")
        sets = [self._grouping_set()]
        while self.accept_symbol(","):
            sets.append(self._grouping_set())
        self.expect_symbol(")")
        seen: dict[str, None] = {}
        for gset in sets:
            self._check_set_duplicates(gset, "grouping set")
            rendered = _render_set(gset)
            if rendered in seen:
                raise GroupingSetError("duplicate grouping set",
                                       rendered)
            seen[rendered] = None
        return ast.GroupingSets(tuple(sets))

    def _grouping_set(self) -> tuple[ast.Expr, ...]:
        """One member of a GROUPING SETS list: ``(a, b)``, ``()`` (the
        grand total) or a bare expression."""
        if self.accept_symbol("("):
            if self.accept_symbol(")"):
                return ()
            exprs = tuple(self._expression_list())
            self.expect_symbol(")")
            return exprs
        return (self.expression(),)

    @staticmethod
    def _check_set_duplicates(exprs: tuple[ast.Expr, ...],
                              what: str) -> None:
        from repro.sql.formatter import format_expr
        seen: set[str] = set()
        for expr in exprs:
            rendered = format_expr(expr)
            if rendered in seen:
                raise GroupingSetError(
                    f"duplicate expression {rendered} in {what}",
                    _render_set(exprs))
            seen.add(rendered)

    def _order_items(self) -> list[ast.OrderItem]:
        items = []
        while True:
            expr = self.expression()
            ascending = True
            if self.accept_keyword("ASC"):
                ascending = True
            elif self.accept_keyword("DESC"):
                ascending = False
            items.append(ast.OrderItem(expr, ascending))
            if not self.accept_symbol(","):
                return items

    # -- CREATE ----------------------------------------------------------
    def _create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self._create_table()
        if self.accept_keyword("VIEW"):
            name = self.expect_ident("view name")
            self.expect_keyword("AS")
            return ast.CreateView(name, self.select())
        if self.accept_keyword("MATERIALIZED"):
            self.expect_keyword("VIEW")
            name = self.expect_ident("view name")
            self.expect_keyword("AS")
            return ast.CreateMaterializedView(name, self.select())
        if self.accept_keyword("INDEX"):
            name = self.expect_ident("index name")
            self.expect_keyword("ON")
            table = self.expect_ident("table name")
            self.expect_symbol("(")
            columns = self._ident_list()
            self.expect_symbol(")")
            return ast.CreateIndex(name, table, tuple(columns))
        raise self.error("expected TABLE, VIEW, MATERIALIZED VIEW or "
                         "INDEX after CREATE")

    def _create_table(self) -> ast.Statement:
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.expect_ident("table name")
        if self.accept_keyword("AS"):
            select = self.select()
            return ast.CreateTableAs(name, select)
        self.expect_symbol("(")
        columns: list[ast.ColumnSpec] = []
        primary_key: tuple[str, ...] = ()
        while True:
            if self.accept_keyword("PRIMARY"):
                self.expect_keyword("KEY")
                self.expect_symbol("(")
                primary_key = tuple(self._ident_list())
                self.expect_symbol(")")
            else:
                col_name = self.expect_ident("column name")
                type_name = self.expect_ident("type name")
                # Swallow (precision[, scale]) suffixes like VARCHAR(20).
                if self.accept_symbol("("):
                    while not self.accept_symbol(")"):
                        self.advance()
                columns.append(ast.ColumnSpec(col_name, type_name))
            if not self.accept_symbol(","):
                break
        self.expect_symbol(")")
        if self.accept_keyword("PRIMARY"):
            self.expect_keyword("KEY")
            self.expect_symbol("(")
            primary_key = tuple(self._ident_list())
            self.expect_symbol(")")
        return ast.CreateTable(name, tuple(columns), primary_key,
                               if_not_exists)

    def _drop(self) -> ast.Statement:
        self.expect_keyword("DROP")
        if self.accept_keyword("TABLE"):
            if_exists = self._if_exists()
            name = self.expect_ident("table name")
            return ast.DropTable(name, if_exists)
        if self.accept_keyword("VIEW"):
            if_exists = self._if_exists()
            name = self.expect_ident("view name")
            return ast.DropView(name, if_exists)
        if self.accept_keyword("MATERIALIZED"):
            self.expect_keyword("VIEW")
            if_exists = self._if_exists()
            name = self.expect_ident("view name")
            return ast.DropMaterializedView(name, if_exists)
        if self.accept_keyword("INDEX"):
            if_exists = self._if_exists()
            name = self.expect_ident("index name")
            return ast.DropIndex(name, if_exists)
        raise self.error("expected TABLE, VIEW, MATERIALIZED VIEW or "
                         "INDEX after DROP")

    def _if_exists(self) -> bool:
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            return True
        return False

    # -- INSERT / UPDATE / DELETE ----------------------------------------
    def _insert(self) -> ast.Statement:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_ident("table name")
        columns: tuple[str, ...] = ()
        if self.peek_symbol("("):
            self.advance()
            columns = tuple(self._ident_list())
            self.expect_symbol(")")
        if self.accept_keyword("VALUES"):
            rows = [self._value_tuple()]
            while self.accept_symbol(","):
                rows.append(self._value_tuple())
            return ast.InsertValues(table, tuple(rows), columns)
        select = self.select()
        return ast.InsertSelect(table, select, columns)

    def _value_tuple(self) -> tuple[ast.Expr, ...]:
        self.expect_symbol("(")
        exprs = tuple(self._expression_list())
        self.expect_symbol(")")
        return exprs

    def _update(self) -> ast.Statement:
        self.expect_keyword("UPDATE")
        name = self.expect_ident("table name")
        alias = None
        if not self.peek_keyword("SET") and \
                self.peek().type == TokenType.IDENT:
            alias = self.expect_ident("alias")
        self.expect_keyword("SET")
        assignments = [self._assignment()]
        while self.accept_symbol(","):
            assignments.append(self._assignment())
        from_tables: list[ast.TableRef] = []
        if self.accept_keyword("FROM"):
            from_tables.append(self._table_ref())
            while self.accept_symbol(","):
                from_tables.append(self._table_ref())
        where = self.expression() if self.accept_keyword("WHERE") else None
        return ast.Update(ast.TableRef(name, alias), tuple(assignments),
                          tuple(from_tables), where)

    def _table_ref(self) -> ast.TableRef:
        name = self.expect_ident("table name")
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_ident("alias")
        elif (self.peek().type == TokenType.IDENT
              and not self._is_clause_boundary(self.peek())):
            alias = self.expect_ident("alias")
        return ast.TableRef(name, alias)

    def _assignment(self) -> ast.Assignment:
        column = self.expect_ident("column name")
        self.expect_symbol("=")
        return ast.Assignment(column, self.expression())

    def _delete(self) -> ast.Statement:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self._table_ref()
        where = self.expression() if self.accept_keyword("WHERE") else None
        return ast.Delete(table, where)

    def _ident_list(self) -> list[str]:
        names = [self.expect_ident()]
        while self.accept_symbol(","):
            names.append(self.expect_ident())
        return names

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    def expression(self) -> ast.Expr:
        return self._or_expr()

    def _or_expr(self) -> ast.Expr:
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = ast.BinaryOp("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> ast.Expr:
        left = self._not_expr()
        while self.accept_keyword("AND"):
            left = ast.BinaryOp("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> ast.Expr:
        if self.accept_keyword("NOT"):
            return ast.UnaryOp("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> ast.Expr:
        left = self._additive()
        token = self.peek()
        if token.type == TokenType.SYMBOL and token.value in (
                "=", "<>", "!=", "<", "<=", ">", ">="):
            self.advance()
            op = "<>" if token.value == "!=" else token.value
            return ast.BinaryOp(op, left, self._additive())
        if self.accept_keyword("IS"):
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            return ast.IsNull(left, negated)
        negated = bool(self.accept_keyword("NOT"))
        if self.accept_keyword("IN"):
            self.expect_symbol("(")
            items = tuple(self._expression_list())
            self.expect_symbol(")")
            return ast.InList(left, items, negated)
        if self.accept_keyword("BETWEEN"):
            low = self._additive()
            self.expect_keyword("AND")
            high = self._additive()
            between = ast.BinaryOp("AND",
                                   ast.BinaryOp(">=", left, low),
                                   ast.BinaryOp("<=", left, high))
            if negated:
                return ast.UnaryOp("NOT", between)
            return between
        if negated:
            raise self.error("expected IN or BETWEEN after NOT")
        return left

    def _additive(self) -> ast.Expr:
        left = self._multiplicative()
        while True:
            if self.accept_symbol("+"):
                left = ast.BinaryOp("+", left, self._multiplicative())
            elif self.accept_symbol("-"):
                left = ast.BinaryOp("-", left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> ast.Expr:
        left = self._unary()
        while True:
            if self.accept_symbol("*"):
                left = ast.BinaryOp("*", left, self._unary())
            elif self.accept_symbol("/"):
                left = ast.BinaryOp("/", left, self._unary())
            else:
                return left

    def _unary(self) -> ast.Expr:
        if self.accept_symbol("-"):
            # Fold a minus directly applied to a number into a negative
            # literal, so formatting round-trips exactly.
            token = self.peek()
            if token.type == TokenType.NUMBER:
                self.advance()
                return ast.Literal(-token.value)
            return ast.UnaryOp("-", self._unary())
        if self.accept_symbol("+"):
            return self._unary()
        return self._primary()

    def _primary(self) -> ast.Expr:
        token = self.peek()
        if token.type == TokenType.NUMBER:
            self.advance()
            return ast.Literal(token.value)
        if token.type == TokenType.STRING:
            self.advance()
            return ast.Literal(token.value)
        if self.accept_symbol("("):
            expr = self.expression()
            self.expect_symbol(")")
            return expr
        if self.peek_keyword("CASE"):
            return self._case()
        if self.peek_keyword("CAST"):
            return self._cast()
        if self.accept_keyword("NULL"):
            return ast.Literal(None)
        if self.accept_keyword("TRUE"):
            return ast.Literal(True)
        if self.accept_keyword("FALSE"):
            return ast.Literal(False)
        if token.type == TokenType.IDENT:
            if self._is_clause_boundary(token):
                raise self.error(
                    f"unexpected keyword {token.value!r} in "
                    f"expression")
            return self._identifier_expression()
        raise self.error(f"unexpected token "
                         f"{self._describe(token)} in expression")

    def _case(self) -> ast.Expr:
        self.expect_keyword("CASE")
        whens: list[tuple[ast.Expr, ast.Expr]] = []
        while self.accept_keyword("WHEN"):
            condition = self.expression()
            self.expect_keyword("THEN")
            result = self.expression()
            whens.append((condition, result))
        if not whens:
            raise self.error("CASE requires at least one WHEN")
        else_ = None
        if self.accept_keyword("ELSE"):
            else_ = self.expression()
        self.expect_keyword("END")
        return ast.CaseWhen(tuple(whens), else_)

    def _cast(self) -> ast.Expr:
        self.expect_keyword("CAST")
        self.expect_symbol("(")
        operand = self.expression()
        self.expect_keyword("AS")
        type_name = self.expect_ident("type name")
        if self.accept_symbol("("):
            while not self.accept_symbol(")"):
                self.advance()
        self.expect_symbol(")")
        return ast.Cast(operand, type_name)

    def _identifier_expression(self) -> ast.Expr:
        name = self.expect_ident()
        if self.peek_symbol("("):
            return self._func_call(name)
        if self.accept_symbol("."):
            column = self.expect_ident("column name")
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)

    def _func_call(self, name: str) -> ast.Expr:
        self.expect_symbol("(")
        distinct = False
        args: list[ast.Expr] = []
        by_columns: list[ast.ColumnRef] = []
        default: Optional[ast.Expr] = None

        if self.accept_symbol(")"):
            pass
        else:
            if self.accept_keyword("DISTINCT"):
                distinct = True
            if self.peek_symbol("*"):
                self.advance()
                args.append(ast.Star())
            else:
                args.append(self.expression())
            # Extended BY clause: sum(A BY D1, D2 [DEFAULT 0])
            if self.accept_keyword("BY"):
                by_columns.append(self._by_column())
                while self.accept_symbol(","):
                    by_columns.append(self._by_column())
            if self.accept_keyword("DEFAULT"):
                default = self.expression()
            while self.accept_symbol(","):
                args.append(self.expression())
            self.expect_symbol(")")

        over = None
        if self.accept_keyword("OVER"):
            self.expect_symbol("(")
            partition: list[ast.Expr] = []
            if self.accept_keyword("PARTITION"):
                self.expect_keyword("BY")
                partition = self._expression_list()
            self.expect_symbol(")")
            over = ast.WindowSpec(tuple(partition))

        return ast.FuncCall(name=name.lower(), args=tuple(args),
                            distinct=distinct,
                            by_columns=tuple(by_columns),
                            default=default, over=over)

    def _by_column(self) -> ast.ColumnRef:
        name = self.expect_ident("column name")
        if self.accept_symbol("."):
            column = self.expect_ident("column name")
            return ast.ColumnRef(column, table=name)
        return ast.ColumnRef(name)
