"""The views differential sweep as a test, plus its blindness
self-tests (a deliberately broken maintenance path must surface as
findings) and the ``--list-variants`` CLI smoke."""

import pytest

from repro.fuzz.cli import main as fuzz_main
from repro.fuzz.generator import CaseGenerator
from repro.fuzz.views import (ViewSweepStats, sweep_case_views,
                              sweep_cases_views)


def _cases(count, seed=0):
    return list(CaseGenerator(seed=seed).cases(count))


class TestViewsSweep:
    def test_small_budget_sweep_is_clean(self):
        """A few cases through every backend x storage variant: every
        served read bit-identical to recompute after every DML."""
        stats = sweep_cases_views(_cases(3))
        assert stats.ok, "\n".join(f.describe()
                                   for f in stats.findings)
        assert stats.checks > 0

    def test_sweep_covers_all_variants(self):
        stats = ViewSweepStats()
        sweep_case_views(_cases(1)[0], stats)
        # 2 storages x 3 backends; rejection (unsupported view shape)
        # is a per-variant outcome, not a skipped variant.
        assert stats.variants + stats.rejected == 6

    @pytest.mark.parametrize("bug", ("views-skip-retraction",
                                     "views-stale-denominator"))
    def test_sweep_is_not_blind(self, bug):
        """Self-test: each injectable maintenance bug must produce a
        divergence finding, or the sweep proves nothing."""
        stats = ViewSweepStats()
        # pin to percentage families: both injectable bugs live in
        # percentage-view maintenance, and the default stream now
        # mixes in families the views sweep only rejects (cube)
        generator = CaseGenerator(seed=0, families=("vpct", "hpct"))
        for case in generator.cases(8):
            sweep_case_views(case, stats, backends=("serial",),
                             storages=("memory",), inject_bug=bug)
            if not stats.ok:
                break
        assert any(
            f.problem == "view-served result diverges from recompute"
            for f in stats.findings)

    def test_unknown_bug_rejected(self):
        with pytest.raises(ValueError, match="unknown views bug"):
            sweep_case_views(_cases(1)[0], ViewSweepStats(),
                             inject_bug="views-no-such-bug")


class TestCli:
    def test_list_variants(self, capsys):
        assert fuzz_main(["--list-variants"]) == 0
        out = capsys.readouterr().out
        for variant in ("serial/memory/untraced", "process/disk/traced"):
            assert variant in out
        assert "--views" in out

    def test_views_sweep_exit_codes(self, capsys):
        assert fuzz_main(["--views", "--seed", "0",
                          "--budget", "1", "--backend", "serial",
                          "--storage", "memory", "--quiet"]) == 0
        # Injected bug + findings = the self-test passed = exit 1
        # (mirrors --inject-bug under the differential fuzz).
        assert fuzz_main(["--views", "--seed", "0", "--budget", "2",
                          "--backend", "serial", "--storage", "memory",
                          "--inject-bug", "views-skip-retraction",
                          "--quiet"]) == 1
        capsys.readouterr()

    def test_views_bug_requires_views_sweep(self, capsys):
        assert fuzz_main(["--inject-bug", "views-skip-retraction",
                          "--budget", "1"]) == 2
        assert "requires --views" in capsys.readouterr().err
