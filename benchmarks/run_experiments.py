"""Regenerate every results table of both papers and write
EXPERIMENTS.md.

Usage:
    python benchmarks/run_experiments.py [--out EXPERIMENTS.md]
        [--employee N] [--sales N] [--tl N] [--census N] [--full]

Without ``--full`` the widest SIGMOD row (sales dept,store -> 10,000
result columns) runs the Hpct strategies on a reduced sales sample so
the whole harness finishes in a few minutes; ``--full`` runs it at the
configured sales scale (tens of seconds per cell).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro import Database
from repro.bench.harness import (ExperimentResult, run_hagg_experiment,
                                 run_hpct_experiment,
                                 run_olap_experiment,
                                 run_vpct_experiment)
from repro.bench.report import format_markdown, format_table
from repro.bench.workloads import (DMKD_CENSUS_QUERIES,
                                   DMKD_TRANSACTION_QUERIES,
                                   SIGMOD_QUERIES)
from repro.core import (HorizontalAggStrategy, HorizontalStrategy,
                        VerticalStrategy)
from repro.datagen import (load_census, load_employee, load_sales,
                           load_transaction_line)

PAPER_TABLE4 = """\
Paper Table 4 (seconds, Teradata V2R4, employee n=1M / sales n=10M):
(1) best; (2) mismatched indexes; (3) UPDATE; (4) Fj from F
employee gender: 15/17/15/26 | gender|marstatus: 15/15/15/25
employee gender|educat,marstatus: 16/16/16/26 | gender,educat|age,marstatus: 15/16/27/27
sales dweek: 84/84/82/161 | monthNo|dweek: 84/85/85/164
sales dept|dweek,monthNo: 88/87/139/168 | dept,store|dweek,monthNo: 656/658/2879/976"""

PAPER_TABLE5 = """\
Paper Table 5 (seconds): from FV / from F
employee rows: 21/14, 16/13, 17/13, 29/50
sales rows: 88/89, 85/85, 93/195, 702/4463"""

PAPER_TABLE6 = """\
Paper Table 6 (seconds): Vpct / Hpct / OLAP extensions
employee rows: 15/14/90, 15/13/64, 16/13/122, 17/29/85
sales rows: 87/89/2708, 85/85/2881, 88/93/3897, 656/702/4512"""

PAPER_DMKD3 = """\
Paper DMKD Table 3 (seconds): SPJ-F / SPJ-FV / CASE-F / CASE-FV
UScensus: 31/31/8/10, 33/34/10/12, 41/41/9/11, 37/40/8/11, 69/71/10/13
tl 1M: 48/33/10/12, 127/102/15/13, 2077/1623/30/37, 68/56/14/13,
       1627/1242/28/32, 1536/1140/27/37
tl 2M: 94/38/20/13, 159/105/28/15, 2280/1965/39/36, 104/58/20/14,
       1744/1458/35/34, 1783/1369/40/40"""


def run_table4(db: Database) -> list[ExperimentResult]:
    strategies = [
        ("(1) best", VerticalStrategy()),
        ("(2) mismatched idx", VerticalStrategy(matching_indexes=False)),
        ("(3) update", VerticalStrategy(use_update=True)),
        ("(4) Fj from F", VerticalStrategy(fj_from_fk=False)),
    ]
    results = []
    for spec in SIGMOD_QUERIES:
        for name, strategy in strategies:
            results.append(run_vpct_experiment(db, spec, strategy,
                                               name=name))
    return results


def run_table5(db: Database, full_db: Database | None
               ) -> list[ExperimentResult]:
    results = []
    for spec in SIGMOD_QUERIES:
        target = db
        if "dept,store" in spec.label and full_db is not None:
            target = full_db
        for name, source in (("from FV", "FV"), ("from F", "F")):
            results.append(run_hpct_experiment(
                target, spec, HorizontalStrategy(source=source),
                name=name))
    return results


def run_table6(db: Database, full_db: Database | None
               ) -> list[ExperimentResult]:
    results = []
    for spec in SIGMOD_QUERIES:
        results.append(run_vpct_experiment(db, spec, VerticalStrategy(),
                                           name="Vpct"))
        target = db
        if "dept,store" in spec.label and full_db is not None:
            target = full_db
        results.append(run_hpct_experiment(
            target, spec, HorizontalStrategy(source="FV"), name="Hpct"))
        results.append(run_olap_experiment(db, spec,
                                           name="OLAP extens"))
    return results


def run_dmkd(db: Database, doubled: Database) -> list[ExperimentResult]:
    strategies = [
        ("SPJ from F", HorizontalAggStrategy(source="F")),
        ("SPJ from FV", HorizontalAggStrategy(source="FV")),
        ("CASE from F", HorizontalStrategy(source="F")),
        ("CASE from FV", HorizontalStrategy(source="FV")),
    ]
    results = []
    for spec in DMKD_CENSUS_QUERIES + DMKD_TRANSACTION_QUERIES:
        for name, strategy in strategies:
            results.append(run_hagg_experiment(db, spec, strategy,
                                               name=name))
    for spec in DMKD_TRANSACTION_QUERIES:
        for name, strategy in strategies:
            result = run_hagg_experiment(doubled, spec, strategy,
                                         name=name)
            result.label = f"{spec.label} (2x)"
            results.append(result)
    return results


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument("--employee", type=int, default=100_000)
    parser.add_argument("--sales", type=int, default=300_000)
    parser.add_argument("--tl", type=int, default=100_000)
    parser.add_argument("--census", type=int, default=50_000)
    parser.add_argument("--reduced-sales", type=int, default=50_000,
                        help="sales size for the 10,000-column row "
                             "unless --full")
    parser.add_argument("--full", action="store_true")
    parser.add_argument("--no-encoding-cache", action="store_true",
                        help="ablation: recompute dictionary encodings "
                             "at every plan step (results and logical "
                             "I/O are unchanged; wall time grows)")
    args = parser.parse_args(argv)
    use_cache = not args.no_encoding_cache

    started = time.perf_counter()
    print(f"Loading data (employee={args.employee:,}, "
          f"sales={args.sales:,}, tl={args.tl:,}/"
          f"{2 * args.tl:,}, census={args.census:,}) ...")
    sigmod = Database(use_encoding_cache=use_cache)
    load_employee(sigmod, args.employee)
    load_sales(sigmod, args.sales)
    reduced = None
    if not args.full:
        reduced = Database(use_encoding_cache=use_cache)
        load_sales(reduced, args.reduced_sales)
    dmkd = Database(use_encoding_cache=use_cache)
    load_census(dmkd, args.census)
    load_transaction_line(dmkd, args.tl)
    doubled = Database(use_encoding_cache=use_cache)
    load_transaction_line(doubled, 2 * args.tl)

    sections = []
    print("Running Table 4 (Vpct optimizations) ...")
    table4 = run_table4(sigmod)
    sections.append(("Table 4 -- Vpct optimization strategies",
                     PAPER_TABLE4, table4))
    print("Running Table 5 (Hpct strategies) ...")
    table5 = run_table5(sigmod, reduced)
    sections.append(("Table 5 -- Hpct strategy comparison",
                     PAPER_TABLE5, table5))
    print("Running Table 6 (vs OLAP extensions) ...")
    table6 = run_table6(sigmod, reduced)
    sections.append(("Table 6 -- percentage aggregations vs OLAP "
                     "extensions", PAPER_TABLE6, table6))
    print("Running DMKD Table 3 (SPJ vs CASE) ...")
    dmkd3 = run_dmkd(dmkd, doubled)
    sections.append(("DMKD Table 3 -- SPJ vs CASE strategies",
                     PAPER_DMKD3, dmkd3))

    note = ""
    if reduced is not None:
        note = (f"\n> The `sales dept,store` row (10,000 result "
                f"columns) ran its Hpct cells on a reduced sales "
                f"sample of n = {args.reduced_sales:,} "
                f"(pass `--full` for the configured scale).\n")

    output = [_header(args, time.perf_counter() - started, note)]
    for title, paper, results in sections:
        output.append(f"## {title}\n")
        output.append("Paper numbers (for shape comparison):\n")
        output.append("```\n" + paper + "\n```\n")
        output.append(format_markdown("Measured wall time (seconds)",
                                      results, "seconds") + "\n")
        output.append(format_markdown("Measured logical I/O (rows)",
                                      results, "logical_io") + "\n")
        print()
        print(format_table(title, results))

    Path(args.out).write_text("\n".join(output))
    print(f"\nWrote {args.out} "
          f"({time.perf_counter() - started:.1f}s total)")
    return 0


def _header(args, elapsed: float, note: str) -> str:
    return f"""# EXPERIMENTS -- paper versus measured

Generated by `python benchmarks/run_experiments.py`
(employee n={args.employee:,}, sales n={args.sales:,},
transactionLine n={args.tl:,} and {2 * args.tl:,},
census n={args.census:,}; the paper used 1M / 10M / 1M+2M / 200k on an
800 MHz Teradata node).
{note}
**How to read these tables.** Absolute seconds are not comparable to
the paper's (different hardware, disk-based DBMS vs in-memory columnar
engine); what should match -- and does, see the per-table notes in
README/DESIGN -- is the *shape*: which strategy wins each row, and how
the logical-I/O factors line up with the paper's wall-clock factors.
The engine's logical-I/O counter (rows read + rows written +
2 x rows updated) restores the cost asymmetries that RAM hides:
UPDATE write-amplification, the SPJ strategy's N extra scans, and the
OLAP window spools.
"""


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
