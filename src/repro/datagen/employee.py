"""The SIGMOD paper's ``employee`` table.

"Table employee had n = 1M; its columns were gender(2), marstatus(4),
educat(5), age(100)" (Section 4).  A ``salary`` measure is added as the
aggregated attribute ``A`` (the paper aggregates "some mathematical
expression involving measures"; its queries on employee need one
numeric column).
"""

from __future__ import annotations

import numpy as np

from repro.api.database import Database
from repro.datagen import distributions as dist
from repro.engine.table import Table

#: The paper's full scale.
PAPER_N = 1_000_000

CARDINALITIES = {"gender": 2, "marstatus": 4, "educat": 5, "age": 100}


def load_employee(db: Database, n_rows: int = 100_000,
                  seed: int = 20040613, name: str = "employee",
                  replace: bool = True) -> Table:
    """Generate and load the employee table.

    ``n_rows`` defaults to 1/10 of the paper's scale so test and bench
    suites stay fast; pass ``PAPER_N`` for the full-size table.
    """
    rng = np.random.default_rng(seed)
    data = {
        "rid": dist.sequence(n_rows),
        "gender": dist.uniform_dimension(rng, n_rows,
                                         CARDINALITIES["gender"]),
        "marstatus": dist.uniform_dimension(rng, n_rows,
                                            CARDINALITIES["marstatus"]),
        "educat": dist.uniform_dimension(rng, n_rows,
                                         CARDINALITIES["educat"]),
        "age": dist.uniform_dimension(rng, n_rows,
                                      CARDINALITIES["age"], base=18),
        "salary": np.round(dist.uniform_measure(rng, n_rows,
                                                15_000.0, 150_000.0), 2),
    }
    if replace:
        db.drop_table(name, if_exists=True)
    return db.load_table(
        name,
        [("rid", "int"), ("gender", "int"), ("marstatus", "int"),
         ("educat", "int"), ("age", "int"), ("salary", "real")],
        data, primary_key=["rid"])
