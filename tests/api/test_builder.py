"""Unit tests for the fluent percentage-query builder."""

import pytest

from repro.api.percentage import PercentageQueryBuilder
from repro.errors import PercentageQueryError


class TestSQLAssembly:
    def test_vpct(self, sales_db):
        builder = (PercentageQueryBuilder(sales_db)
                   .from_table("sales")
                   .group_by("state", "city")
                   .vpct("salesamt", by=["city"]))
        sql = builder.sql()
        assert "Vpct(salesamt BY city)" in sql
        assert sql.endswith("GROUP BY state, city")

    def test_hagg_with_default(self, employee_db):
        sql = (PercentageQueryBuilder(employee_db)
               .from_table("employee")
               .group_by("gender")
               .hagg("sum", "salary", by=["maritalstatus"], default=0)
               .sql())
        assert "DEFAULT 0" in sql

    def test_missing_table_raises(self, db):
        with pytest.raises(PercentageQueryError):
            PercentageQueryBuilder(db).vpct("m").sql()

    def test_missing_terms_raises(self, db):
        with pytest.raises(PercentageQueryError):
            PercentageQueryBuilder(db).from_table("t").sql()


class TestExecution:
    def test_run_matches_raw_sql(self, sales_db):
        from repro.core import run_percentage_query
        built = (PercentageQueryBuilder(sales_db)
                 .from_table("sales")
                 .group_by("state", "city")
                 .vpct("salesamt", by=["city"])
                 .run())
        raw = run_percentage_query(
            sales_db, "SELECT state, city, Vpct(salesamt BY city) "
                      "FROM sales GROUP BY state, city")
        assert built.to_rows() == raw.to_rows()

    def test_where(self, sales_db):
        result = (PercentageQueryBuilder(sales_db)
                  .from_table("sales")
                  .group_by("city")
                  .vpct("salesamt")
                  .where("state = 'TX'")
                  .run())
        assert result.n_rows == 2

    def test_plan_inspection(self, sales_db):
        plan = (PercentageQueryBuilder(sales_db)
                .from_table("sales")
                .group_by("state")
                .vpct("salesamt")
                .plan())
        assert plan.statement_count() > 1

    def test_hpct_and_aggregate(self, store_db):
        result = (PercentageQueryBuilder(store_db)
                  .from_table("sales")
                  .group_by("store")
                  .hpct("salesamt", by=["dweek"])
                  .aggregate("sum", "salesamt", alias="total")
                  .run())
        assert "total" in result.column_names()
        assert result.n_rows == 3
