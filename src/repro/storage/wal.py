"""The write-ahead log: an append-only file of checksummed records.

Each record is ``[magic][payload length][CRC-32][JSON payload]``.  A
record is *committed* once :meth:`WriteAheadLog.append` returns with
``sync=True``: the bytes and an fsync barrier are on disk, so recovery
will replay it.  A crash earlier leaves either nothing or a torn tail;
:meth:`replay` detects a torn tail (short header, impossible length,
or CRC mismatch), truncates it, and returns only the complete prefix
-- which is exactly the set of durable commits.

The log is paired with a checkpoint (see
:class:`~repro.storage.engine.StorageEngine`): a checkpoint captures
the full catalog manifest atomically and then truncates the log, so
recovery is always "load checkpoint, replay whatever the log still
holds".
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Any

from repro.errors import StorageError

WAL_MAGIC = b"RPWL"
_RECORD = struct.Struct("<4sII")


class WriteAheadLog:
    """Append-only checksummed record log."""

    def __init__(self, path: str):
        self.path = path
        self._fd = os.open(path, os.O_RDWR | os.O_CREAT, 0o644)
        self._closed = False
        self.seq = 0  # monotonically increasing within one log epoch

    # ------------------------------------------------------------------
    def append(self, record: dict[str, Any], sync: bool = True) -> int:
        """Append one record; durable once this returns (``sync``)."""
        self._check_open()
        self.seq += 1
        record = dict(record, seq=self.seq)
        payload = json.dumps(record, sort_keys=True).encode()
        buf = _RECORD.pack(WAL_MAGIC, len(payload),
                           zlib.crc32(payload)) + payload
        os.lseek(self._fd, 0, os.SEEK_END)
        os.write(self._fd, buf)
        if sync:
            os.fsync(self._fd)
        return self.seq

    def replay(self) -> list[dict[str, Any]]:
        """Every complete record in order; a torn tail is truncated.

        Also resets :attr:`seq` to continue after the last durable
        record.
        """
        self._check_open()
        size = os.fstat(self._fd).st_size
        raw = os.pread(self._fd, size, 0)
        records: list[dict[str, Any]] = []
        offset = 0
        while offset < len(raw):
            if offset + _RECORD.size > len(raw):
                break  # torn header
            magic, length, crc = _RECORD.unpack_from(raw, offset)
            body_start = offset + _RECORD.size
            if magic != WAL_MAGIC \
                    or body_start + length > len(raw):
                break  # torn or garbage tail
            payload = raw[body_start:body_start + length]
            if zlib.crc32(payload) != crc:
                break  # torn write inside the payload
            try:
                records.append(json.loads(payload.decode()))
            except ValueError:
                break
            offset = body_start + length
        if offset < size:
            os.ftruncate(self._fd, offset)
            os.fsync(self._fd)
        self.seq = records[-1]["seq"] if records else 0
        return records

    def reset(self) -> None:
        """Truncate the log (after a checkpoint made it redundant)."""
        self._check_open()
        os.ftruncate(self._fd, 0)
        os.fsync(self._fd)
        self.seq = 0

    def size_bytes(self) -> int:
        self._check_open()
        return os.fstat(self._fd).st_size

    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"WAL {self.path!r} is closed")

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            os.close(self._fd)
