"""Differential fuzzing harness for the percentage-aggregation
strategies.

The paper's central claim is that every evaluation strategy -- the
temp-table join variants, the CASE pivots, the SPJ form and the OLAP
window rewrite -- "produces the same answer set" for the same query.
This package turns that claim into an executable check:

* :mod:`repro.fuzz.generator` builds deterministic random cases
  (schema + NULL-heavy/skewed/degenerate data + a valid query),
* :mod:`repro.fuzz.runner` evaluates each case under every applicable
  strategy **and** under Python's stdlib ``sqlite3`` as an external
  oracle (:mod:`repro.fuzz.oracle`, via the dialect adapter in
  :mod:`repro.fuzz.dialect`),
* :mod:`repro.fuzz.comparator` decides agreement with explicit NULL
  and float-tolerance semantics,
* :mod:`repro.fuzz.reducer` delta-debugs any divergence down to a
  minimal reproducer, persisted by :mod:`repro.fuzz.corpus` and
  replayed forever by ``tests/fuzz/test_corpus.py``.

Run it with ``python -m repro.fuzz --seed 0 --budget 500``.
"""

from repro.fuzz.comparator import compare_outcomes, normalize_rows
from repro.fuzz.corpus import load_corpus, save_repro
from repro.fuzz.generator import CaseGenerator, FuzzCase, TermSpec
from repro.fuzz.reducer import reduce_case
from repro.fuzz.runner import CaseResult, VariantResult, run_case

__all__ = [
    "CaseGenerator",
    "CaseResult",
    "FuzzCase",
    "TermSpec",
    "VariantResult",
    "compare_outcomes",
    "load_corpus",
    "normalize_rows",
    "reduce_case",
    "run_case",
    "save_repro",
]
