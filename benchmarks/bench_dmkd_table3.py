"""DMKD 2004 Table 3: SPJ versus CASE evaluation of horizontal
aggregations, direct (from F) and indirect (from FV), on the census
stand-in and on transactionLine at two scales.

Expected shape (paper): SPJ is one to two orders of magnitude slower
than CASE (our wall-clock compresses this; ``logical_io`` preserves
it); SPJ-from-FV beats SPJ-from-F when N is small; neither CASE
variant dominates universally, with the indirect form less sensitive
to n.
"""

import pytest

from benchmarks.conftest import run_once
from repro.bench.harness import run_hagg_experiment
from repro.bench.workloads import (DMKD_CENSUS_QUERIES,
                                   DMKD_TRANSACTION_QUERIES)
from repro.core import HorizontalAggStrategy, HorizontalStrategy

STRATEGIES = {
    "spj_F": HorizontalAggStrategy(source="F"),
    "spj_FV": HorizontalAggStrategy(source="FV"),
    "case_F": HorizontalStrategy(source="F"),
    "case_FV": HorizontalStrategy(source="FV"),
}

_SMALL_CASES = [
    pytest.param(spec, name, id=f"{spec.label}--{name}")
    for spec in DMKD_CENSUS_QUERIES + DMKD_TRANSACTION_QUERIES
    for name in STRATEGIES
]

_LARGE_CASES = [
    pytest.param(spec, name, id=f"{spec.label} (2x)--{name}")
    for spec in DMKD_TRANSACTION_QUERIES
    for name in STRATEGIES
]


@pytest.mark.parametrize("spec,strategy_name", _SMALL_CASES)
def test_dmkd_table3(benchmark, dmkd_db, spec, strategy_name):
    strategy = STRATEGIES[strategy_name]

    def run():
        return run_hagg_experiment(dmkd_db, spec, strategy,
                                   name=strategy_name)

    result = run_once(benchmark, run)
    assert result.result_rows > 0
    benchmark.extra_info["query"] = spec.label
    benchmark.extra_info["strategy"] = strategy_name
    benchmark.extra_info["logical_io"] = result.logical_io


@pytest.mark.parametrize("spec,strategy_name", _LARGE_CASES)
def test_dmkd_table3_doubled(benchmark, dmkd_db_2x, spec,
                             strategy_name):
    strategy = STRATEGIES[strategy_name]

    def run():
        return run_hagg_experiment(dmkd_db_2x, spec, strategy,
                                   name=strategy_name)

    result = run_once(benchmark, run)
    assert result.result_rows > 0
    benchmark.extra_info["query"] = f"{spec.label} (2x)"
    benchmark.extra_info["strategy"] = strategy_name
    benchmark.extra_info["logical_io"] = result.logical_io
