"""Unit tests for views (the paper's 'F can be a view') and EXPLAIN."""

import pytest

from repro import Database
from repro.errors import CatalogError


@pytest.fixture
def db():
    database = Database()
    database.execute("CREATE TABLE t (g INT, d INT, m REAL)")
    database.execute(
        "INSERT INTO t VALUES (1, 1, 10.0), (1, 2, 30.0), "
        "(2, 1, 5.0)")
    return database


class TestViews:
    def test_create_and_select(self, db):
        db.execute("CREATE VIEW v AS SELECT g, sum(m) AS total "
                   "FROM t GROUP BY g")
        rows = db.query("SELECT g, total FROM v ORDER BY g")
        assert rows == [(1, 40.0), (2, 5.0)]

    def test_view_reflects_base_changes(self, db):
        db.execute("CREATE VIEW v AS SELECT sum(m) AS total FROM t")
        assert db.query("SELECT total FROM v") == [(45.0,)]
        db.execute("INSERT INTO t VALUES (3, 1, 5.0)")
        assert db.query("SELECT total FROM v") == [(50.0,)]

    def test_view_joins_with_tables(self, db):
        db.execute("CREATE VIEW v AS SELECT g, sum(m) AS total "
                   "FROM t GROUP BY g")
        rows = db.query("SELECT t.d, v.total FROM t, v "
                        "WHERE t.g = v.g AND t.g = 2")
        assert rows == [(1, 5.0)]

    def test_percentage_query_over_view(self, db):
        from repro.core import run_percentage_query
        db.execute("CREATE VIEW v AS SELECT g, d, m FROM t "
                   "WHERE m > 6")
        result = run_percentage_query(
            db, "SELECT g, Vpct(m) FROM v GROUP BY g")
        assert result.to_rows() == [(1, 1.0)]

    def test_name_collisions(self, db):
        db.execute("CREATE VIEW v AS SELECT g FROM t")
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW v AS SELECT g FROM t")
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE v (a INT)")
        with pytest.raises(CatalogError):
            db.execute("CREATE VIEW t AS SELECT g FROM t")

    def test_drop_view(self, db):
        db.execute("CREATE VIEW v AS SELECT g FROM t")
        db.execute("DROP VIEW v")
        assert not db.catalog.has_view("v")
        db.execute("DROP VIEW IF EXISTS v")
        with pytest.raises(CatalogError):
            db.execute("DROP VIEW v")


class TestExplain:
    def plan_text(self, db, sql):
        result = db.execute(f"EXPLAIN {sql}")
        return "\n".join(row[0] for row in result.to_rows())

    def test_scan(self, db):
        text = self.plan_text(db, "SELECT g FROM t")
        assert "scan t (3 rows)" in text

    def test_filter_and_aggregate(self, db):
        text = self.plan_text(
            db, "SELECT g, sum(m) FROM t WHERE d = 1 GROUP BY g")
        assert "aggregate group by g" in text
        assert "filter" in text

    def test_join_with_index_note(self, db):
        db.execute("CREATE TABLE s (g INT, label VARCHAR)")
        db.execute("CREATE INDEX ix ON s (g)")
        text = self.plan_text(
            db, "SELECT t.m FROM t, s WHERE t.g = s.g")
        assert "hash join s on" in text
        assert "[index ix]" in text

    def test_left_join(self, db):
        db.execute("CREATE TABLE s (g INT)")
        text = self.plan_text(
            db, "SELECT t.m FROM t LEFT OUTER JOIN s ON t.g = s.g")
        assert "left outer join s" in text

    def test_order_distinct_limit(self, db):
        text = self.plan_text(
            db, "SELECT DISTINCT g FROM t ORDER BY g DESC LIMIT 1")
        assert text.splitlines()[0] == "limit 1"
        assert "sort by g DESC" in text
        assert "distinct" in text

    def test_explain_dml(self, db):
        text = self.plan_text(db, "DELETE FROM t WHERE g = 1")
        assert "delete from t" in text

    def test_explain_view_scan(self, db):
        db.execute("CREATE VIEW v AS SELECT g FROM t")
        text = self.plan_text(db, "SELECT g FROM v")
        assert "view scan v" in text
