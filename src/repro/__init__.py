"""repro: reproduction of "Vertical and Horizontal Percentage
Aggregations" (Carlos Ordonez, SIGMOD 2004).

The package provides:

* :mod:`repro.engine` -- an in-memory columnar SQL engine (the
  substrate standing in for Teradata);
* :mod:`repro.sql` -- the SQL front end, including the paper's
  ``Vpct(A BY ...)`` / ``Hpct(A BY ...)`` extension syntax;
* :mod:`repro.core` -- the paper's contribution: the percentage-query
  code generator and its evaluation strategies;
* :mod:`repro.olap` -- the ANSI OLAP window-function baseline;
* :mod:`repro.api` -- the Database facade and a DB-API 2.0 driver;
* :mod:`repro.datagen` -- the paper's synthetic workload generators;
* :mod:`repro.bench` -- the experiment harness reproducing every
  results table.

Quickstart::

    from repro import Database
    from repro.core import run_percentage_query

    db = Database()
    db.load_table("sales", [("state", "varchar"), ("city", "varchar"),
                            ("salesAmt", "real")], rows)
    result = run_percentage_query(
        db, "SELECT state, city, Vpct(salesAmt BY city) "
            "FROM sales GROUP BY state, city")
"""

from repro.api.database import Database
from repro.api.dbapi import connect
from repro.errors import (CatalogError, ExecutionError, GroupingSetError,
                          PercentageQueryError, PlanningError, ReproError,
                          SQLSyntaxError, TypeMismatchError)

__version__ = "1.0.0"

__all__ = [
    "Database",
    "connect",
    "ReproError",
    "SQLSyntaxError",
    "PlanningError",
    "ExecutionError",
    "CatalogError",
    "TypeMismatchError",
    "PercentageQueryError",
    "GroupingSetError",
    "__version__",
]
