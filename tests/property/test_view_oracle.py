"""Property-based oracle for incrementally-maintained views: any
random interleaving of INSERT / UPDATE / DELETE against the base table
leaves the delta-maintained view bit-identical to recomputing its
defining query from scratch (the same comparator and pinned-strategy
baselines as the ``--views`` fuzz sweep).

The value domains are adversarial on purpose: dimension pools include
NULL (NULL group keys), the measure pool includes NULL and 0.0 (NULL
and zero denominators for the percentage forms), and the op pool
includes unfiltered DELETE and key-migrating UPDATE (group death and
rebirth)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.core.execute import run_percentage_query
from repro.core.horizontal import HorizontalStrategy
from repro.core.vertical import VerticalStrategy
from repro.fuzz.views import table_diff

VPCT_SQL = "SELECT d, g, Vpct(m BY g) FROM t GROUP BY d, g"
HPCT_SQL = "SELECT d, Hpct(m BY g) FROM t GROUP BY d"
PLAIN_SQL = "SELECT d, sum(m), count(*), avg(m) FROM t GROUP BY d"

#: Small closed domains so collisions (updates/deletes actually
#: matching rows, groups dying and being reborn) are common.  NULLs in
#: the dimension pools make NULL group keys; NULL and 0.0 in the
#: measure pool make NULL and zero denominators.
D_VALUES = ("x", "y", "z", None)
G_VALUES = ("a", "b", None)
M_VALUES = (0.0, 1.0, 2.5, -1.5, None)

ROW = st.tuples(st.sampled_from(D_VALUES), st.sampled_from(G_VALUES),
                st.sampled_from(M_VALUES))
ROWS = st.lists(ROW, min_size=0, max_size=10)

_DOMAINS = {"d": D_VALUES, "g": G_VALUES, "m": M_VALUES}


def _lit(value) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def _pred(column: str, value) -> str:
    if value is None:
        return f"{column} IS NULL"
    return f"{column} = {_lit(value)}"


@st.composite
def dml_op(draw) -> str:
    """One DML statement drawn from the op pool, rendered as SQL."""
    kind = draw(st.sampled_from(
        ("insert", "insert", "update", "delete", "delete-all")))
    if kind == "insert":
        rows = draw(st.lists(ROW, min_size=1, max_size=3))
        values = ", ".join(
            "(" + ", ".join(_lit(v) for v in row) + ")"
            for row in rows)
        return f"INSERT INTO t VALUES {values}"
    where_col = draw(st.sampled_from(("d", "g", "m")))
    where_val = draw(st.sampled_from(_DOMAINS[where_col]))
    if kind == "update":
        # Targets a measure (denominator drift) or a dimension
        # (key migration: the row leaves one group for another,
        # possibly emptying the first and/or birthing the second).
        set_col = draw(st.sampled_from(("d", "g", "m")))
        set_val = draw(st.sampled_from(_DOMAINS[set_col]))
        return (f"UPDATE t SET {set_col} = {_lit(set_val)} "
                f"WHERE {_pred(where_col, where_val)}")
    if kind == "delete":
        return f"DELETE FROM t WHERE {_pred(where_col, where_val)}"
    return "DELETE FROM t"  # kills every group at once


OPS = st.lists(dml_op(), min_size=1, max_size=6)


def _build(initial_rows, view_sql: str) -> Database:
    db = Database()
    db.execute("CREATE TABLE t (d VARCHAR, g VARCHAR, m REAL)")
    if initial_rows:
        values = ", ".join(
            "(" + ", ".join(_lit(v) for v in row) + ")"
            for row in initial_rows)
        db.execute(f"INSERT INTO t VALUES {values}")
    db.execute(f"CREATE MATERIALIZED VIEW v AS {view_sql}")
    return db


def _assert_identical(db: Database, sql: str, recompute) -> None:
    served = db.execute(sql)
    difference = table_diff(recompute(db, sql), served)
    assert difference is None, difference


def _recompute_vpct(db, sql):
    return run_percentage_query(db, sql, strategy=VerticalStrategy(),
                                use_views=False)


def _recompute_hpct(db, sql):
    return run_percentage_query(
        db, sql, strategy=HorizontalStrategy(source="F"),
        use_views=False)


def _recompute_plain(db, sql):
    return db.execute(sql, use_views=False)


def _run_script(initial_rows, ops, sql, recompute) -> None:
    db = _build(initial_rows, sql)
    _assert_identical(db, sql, recompute)
    for dml in ops:
        db.execute(dml)
        _assert_identical(db, sql, recompute)


@given(ROWS, OPS)
@settings(max_examples=50, deadline=None)
def test_vpct_view_matches_recompute(initial_rows, ops):
    _run_script(initial_rows, ops, VPCT_SQL, _recompute_vpct)


@given(ROWS, OPS)
@settings(max_examples=50, deadline=None)
def test_hpct_view_matches_recompute(initial_rows, ops):
    _run_script(initial_rows, ops, HPCT_SQL, _recompute_hpct)


@given(ROWS, OPS)
@settings(max_examples=50, deadline=None)
def test_plain_groupby_view_matches_recompute(initial_rows, ops):
    _run_script(initial_rows, ops, PLAIN_SQL, _recompute_plain)


# ----------------------------------------------------------------------
# Deterministic corners the random scripts cover only probabilistically
# ----------------------------------------------------------------------
def test_group_death_and_rebirth():
    """Deleting every member of a group removes its rows from the
    view; re-inserting the key brings the group back, bit-identically
    either way."""
    db = _build([("x", "a", 1.0), ("x", "b", 3.0), ("y", "a", 2.0)],
                VPCT_SQL)
    db.execute("DELETE FROM t WHERE d = 'x'")
    _assert_identical(db, VPCT_SQL, _recompute_vpct)
    assert db.execute("SELECT * FROM v").n_rows == 1
    db.execute("INSERT INTO t VALUES ('x', 'a', 5.0)")
    _assert_identical(db, VPCT_SQL, _recompute_vpct)
    db.execute("DELETE FROM t")
    _assert_identical(db, VPCT_SQL, _recompute_vpct)
    assert db.execute("SELECT * FROM v").n_rows == 0


def test_null_denominator_groups():
    """A group whose measures are all NULL (NULL denominator) and one
    whose measures sum to zero (zero denominator) both survive delta
    maintenance bit-identically."""
    db = _build([("x", "a", None), ("x", "b", None),
                 ("y", "a", 1.0), ("y", "b", -1.0)], VPCT_SQL)
    _assert_identical(db, VPCT_SQL, _recompute_vpct)
    # Drift an all-NULL group into a live one and back.
    db.execute("UPDATE t SET m = 2.0 WHERE d = 'x'")
    _assert_identical(db, VPCT_SQL, _recompute_vpct)
    db.execute("UPDATE t SET m = NULL WHERE d = 'x'")
    _assert_identical(db, VPCT_SQL, _recompute_vpct)
