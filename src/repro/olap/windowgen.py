"""Generate the OLAP-extensions equivalent of a percentage query.

Section 4.2 compares the proposed aggregations against "queries using
available OLAP extensions in SQL ... the sum() window function and the
OVER/PARTITION BY clauses.  In this case the optimizer groups rows and
computes aggregates using its own temporary tables and indexes.  We
have no control over these temporary tables."

The baseline query computes, for each detail row of ``F``, the windowed
fine total and the windowed coarse total, divides them, and collapses
duplicates with DISTINCT::

    SELECT DISTINCT D1, ..., Dk,
           sum(A) OVER (PARTITION BY D1, ..., Dk)
         / sum(A) OVER (PARTITION BY D1, ..., Dj)
    FROM F;

Both window passes run over the full detail table and the DISTINCT
re-sorts it -- exactly the cost structure that makes the OLAP form an
order of magnitude slower in Table 6 (the engine's window operator
charges the extra materialization, see
:mod:`repro.engine.window`).

The result set matches ``Vpct`` row for row, which is the paper's
ground rule for the comparison ("each query with the same parameters
produces the same answer set").
"""

from __future__ import annotations

from repro.api.database import Database
from repro.core import common, model
from repro.core.model import PercentageQuery, parse_percentage_query
from repro.engine.table import Table
from repro.errors import PercentageQueryError


def generate_olap_percentage_query(query: PercentageQuery | str) -> str:
    """The single-statement window-function rendition of a Vpct query."""
    if isinstance(query, str):
        query = parse_percentage_query(query)
    terms = query.vertical_pct_terms()
    if not terms:
        raise PercentageQueryError(
            "the OLAP baseline covers vertical percentage queries "
            "(Vpct); horizontal form needs pivoting, which the OLAP "
            "extensions do not provide")
    if query.source_select is not None:
        raise PercentageQueryError(
            "materialize the fact table first (multi-table FROM)")

    fine = common.column_list(query.group_by)
    selects = [fine] if fine else []
    for term in query.terms:
        arg = common.argument_sql(term)
        if term.kind == model.VPCT:
            by = set(term.by_columns)
            totals = tuple(c for c in query.group_by if c not in by) \
                if term.by_columns else ()
            coarse = common.column_list(totals)
            fine_window = (f"sum({arg}) OVER (PARTITION BY {fine})")
            coarse_window = f"sum({arg}) OVER (PARTITION BY {coarse})" \
                if coarse else f"sum({arg}) OVER ()"
            selects.append(
                f"CASE WHEN {coarse_window} <> 0 THEN "
                f"{fine_window} / {coarse_window} ELSE NULL END")
        else:
            # Plain aggregates ride along as windows at the fine level.
            distinct = "DISTINCT " if term.distinct else ""
            inner = arg if term.argument is not None else "*"
            selects.append(f"{term.func}({distinct}{inner}) "
                           f"OVER (PARTITION BY {fine})")
    sql = ("SELECT DISTINCT " + ", ".join(selects)
           + f" FROM {query.table}" + common.where_suffix(query.where))
    if fine:
        sql += f" ORDER BY {fine}"
    return sql


def run_olap_percentage_query(db: Database,
                              query: PercentageQuery | str) -> Table:
    """Execute the OLAP-extensions rendition and return its rows."""
    sql = generate_olap_percentage_query(query)
    result = db.execute(sql)
    if not isinstance(result, Table):  # pragma: no cover - defensive
        raise PercentageQueryError("the OLAP query returned no rows")
    return result
