"""EXPLAIN: render the evaluation plan of a statement as text rows.

The explanation mirrors what the interpreting executor will actually
do -- scan order, join keys and whether a covering index serves the
build side, residual filters, grouping, and the post-processing steps
-- without executing anything.  The output is a one-column table so it
flows through the same result channels as any query (cursor, CLI...).
"""

from __future__ import annotations

from typing import Optional

from repro.engine import cancel
from repro.engine.column import ColumnData
from repro.engine.planner import plan_from
from repro.engine.table import Table
from repro.engine.types import SQLType
from repro.obs import tracer as tracer_mod
from repro.obs.tracer import render_tree
from repro.sql import ast
from repro.sql.formatter import format_expr, format_statement


def explain_statement(executor, statement: ast.Statement) -> Table:
    """One plan line per row (column ``plan``)."""
    return _plan_table(_plan_lines(executor, statement))


def explain_analyze_statement(executor, statement: ast.Statement,
                              normalize=None) -> Table:
    """EXPLAIN ANALYZE: the static plan, then the actuals span tree.

    The statement **executes for real** (DML mutates, temps persist)
    under the executor's own tracer, force-enabled for the duration so
    EXPLAIN ANALYZE works on databases opened with tracing off.  The
    trace renders from a private statement span, so concurrent
    statements on other threads never leak into the output.
    """
    lines = _plan_lines(executor, statement)
    tracer = executor.tracer
    was_enabled = tracer.enabled
    tracer.enable()
    try:
        before = executor.stats.snapshot()
        with tracer_mod.activate(tracer), \
                tracer.span("statement", kind="statement",
                            sql=format_statement(statement)) as span:
            result = executor.execute(statement)
            if span is not None:
                span.attrs["result_rows"] = (
                    result.n_rows if isinstance(result, Table)
                    else int(result))
                # Counter deltas, mirroring Database._run_locked, so
                # this statement span passes the charge audit too.
                span.attrs.update(
                    executor.stats.diff_since(before).counters())
    finally:
        if not was_enabled:
            tracer.disable()
    lines.append("-- actual --")
    lines.extend(render_tree(span, normalize=normalize).splitlines())
    return _plan_table(lines)


def _plan_table(lines: list[str]) -> Table:
    data = ColumnData.from_values(SQLType.VARCHAR, lines)
    return Table.from_columns("explain", [("plan", data)])


def _plan_lines(executor, statement: ast.Statement) -> list[str]:
    lines: list[str] = []
    if isinstance(statement, ast.Select):
        mv = executor.matview_for_select(statement)
        if mv is not None:
            lines.append(_matview_line(executor, mv))
        else:
            _explain_select(executor, statement, lines, indent=0)
    elif isinstance(statement, ast.InsertSelect):
        lines.append(f"insert into {statement.table}")
        _explain_select(executor, statement.select, lines, indent=1)
    elif isinstance(statement, ast.CreateTableAs):
        lines.append(f"create table {statement.name} as")
        _explain_select(executor, statement.select, lines, indent=1)
    elif isinstance(statement, ast.Update):
        lines.append(f"update {statement.table.name}"
                     + (" (join update)" if statement.from_tables
                        else ""))
    elif isinstance(statement, ast.Delete):
        lines.append(f"delete from {statement.table.name}")
    else:
        lines.append(type(statement).__name__.lower())
    parallel = _parallel_line(executor)
    if parallel is not None:
        lines.append(parallel)
    lines.append(_governor_line(executor))
    deadline = _deadline_line()
    if deadline is not None:
        lines.append(deadline)
    storage = _storage_line(executor)
    if storage is not None:
        lines.append(storage)
    lines.append(_cache_line(executor))
    return lines


def _parallel_line(executor) -> Optional[str]:
    """The intra-query parallelism this statement may use; omitted
    entirely when the engine is serial, so serial plans are unchanged
    (the governor line stays second-to-last either way)."""
    opts = executor.options
    if opts.parallel_degree <= 1 or opts.parallel_backend == "serial":
        return None
    line = (f"parallel: degree={opts.parallel_degree} "
            f"backend={opts.parallel_backend} "
            f"(row threshold {opts.parallel_row_threshold}")
    if opts.parallel_backend == "process":
        line += f", morsel rows {opts.morsel_rows}"
    return line + ")"


def _governor_line(executor) -> str:
    """The resource budgets this statement will run under (the cache
    line stays last; consumers assert on the leading rows)."""
    return f"governor: {executor.governor.budget.describe()}"


def _deadline_line() -> Optional[str]:
    """The ambient cancel token's deadline, if one is active; omitted
    entirely otherwise so deadline-free plans are unchanged (the cache
    line stays last either way)."""
    token = cancel.active_token()
    if token is None:
        return None
    remaining = token.remaining()
    if remaining is None:
        return "deadline: none (cancellable)"
    return f"deadline: {remaining:.3f}s remaining"


def _storage_line(executor) -> Optional[str]:
    """The table substrate plus buffer-pool occupancy; omitted on the
    memory backend so existing plans are unchanged (the cache line
    stays last either way)."""
    if executor.options.storage != "disk":
        return None
    engine = getattr(executor.catalog, "storage", None)
    if engine is None:
        return "storage: disk"
    pool = engine.pool.info()
    return (f"storage: disk page_size={engine.page_size} "
            f"pool={pool['pages']}/{pool['capacity']} pages "
            f"hits={pool['hits']} misses={pool['misses']} "
            f"evictions={pool['evictions']}")


def _cache_line(executor) -> str:
    """Encoding-cache occupancy/traffic, appended as the last plan row
    (existing consumers assert on the leading rows)."""
    if not executor.options.use_encoding_cache:
        return "encoding cache: off"
    info = executor.catalog.encoding_cache.info()
    return (f"encoding cache: {info['entries']} entries, "
            f"{info['bytes']} bytes, hits={info['hits']} "
            f"misses={info['misses']} evictions={info['evictions']}")


def _explain_select(executor, select: ast.Select, lines: list[str],
                    indent: int) -> None:
    pad = "  " * indent

    def emit(text: str, extra: int = 0) -> None:
        lines.append(pad + "  " * extra + text)

    if select.limit is not None:
        emit(f"limit {select.limit}")
    if select.order_by:
        keys = ", ".join(format_expr(o.expr)
                         + ("" if o.ascending else " DESC")
                         for o in select.order_by)
        emit(f"sort by {keys}")
    if select.distinct:
        emit("distinct")
    if _is_aggregate(select):
        group = ", ".join(format_expr(e) for e in select.group_by)
        emit("aggregate" + (f" group by {group}" if group
                            else " (global)"))
        if ast.has_grouping_sets(select):
            emit(f"grouping-sets: {_count_grouping_sets(select)} sets, "
                 f"shared-scan", 1)
        if select.having is not None:
            emit(f"having {format_expr(select.having)}", 1)

    if select.from_ is None:
        emit("single-row source")
        return

    schemas = {}
    for source in select.from_.sources():
        binding = source.binding.lower()
        schemas[binding] = _source_schema(executor, source)

    def resolve_binding(ref: ast.ColumnRef,
                        candidates: list[str]) -> Optional[str]:
        if ref.table:
            key = ref.table.lower()
            if key in candidates and schemas.get(key) is not None \
                    and schemas[key].has_column(ref.name):
                return key
            return None
        owners = [b for b in candidates
                  if schemas.get(b) is not None
                  and schemas[b].has_column(ref.name)]
        return owners[0] if len(owners) == 1 else None

    plan = plan_from(select.from_, select.where, resolve_binding)
    if plan.residual_where is not None:
        emit(f"filter {format_expr(plan.residual_where)}")
    for join in reversed(plan.joins):
        if not join.left_keys:
            emit(f"cartesian join {join.source.binding}")
        else:
            keys = ", ".join(
                f"{format_expr(l)} = {format_expr(r)}"
                for l, r in zip(join.left_keys, join.right_keys))
            index_note = _index_note(executor, join)
            kind = "left outer join" if join.kind == "left" \
                else "hash join"
            emit(f"{kind} {join.source.binding} on {keys}{index_note}")
        if join.residual is not None:
            emit(f"filter {format_expr(join.residual)}", 1)
    emit(_scan_line(executor, plan.first.source))


def _count_grouping_sets(select: ast.Select) -> int:
    """How many grouping sets the GROUP BY clause requests (the cross
    product of its elements' expansions)."""
    total = 1
    for element in select.group_by:
        if isinstance(element, ast.Cube):
            total *= 2 ** len(element.exprs)
        elif isinstance(element, ast.Rollup):
            total *= len(element.exprs) + 1
        elif isinstance(element, ast.GroupingSets):
            total *= len(element.sets)
    return total


def _is_aggregate(select: ast.Select) -> bool:
    if select.group_by or select.having is not None:
        return True
    return any(not isinstance(item.expr, ast.Star)
               and ast.contains_aggregate(item.expr)
               for item in select.items)


def _source_schema(executor, source: ast.FromSource):
    if isinstance(source, ast.TableRef):
        if executor.catalog.has_table(source.name):
            return executor.catalog.table(source.name).schema
        return None  # view or missing: columns resolved at run time
    return None      # derived table


def _matview_line(executor, mv) -> str:
    """The answered-from-a-materialized-view plan row; freshness is
    relative to the base table's current version."""
    base = executor.catalog.table(mv.definition.base_table)
    freshness = "fresh" if mv.fresh(base) else "stale"
    return f"view: {mv.definition.name} ({freshness}@v{mv.base_version})"


def _scan_line(executor, source: ast.FromSource) -> str:
    if isinstance(source, ast.TableRef):
        if executor.catalog.has_matview(source.name):
            return _matview_line(
                executor, executor.catalog.matview(source.name)) \
                .replace("view: ", "materialized view scan ", 1)
        if executor.catalog.has_view(source.name):
            return f"view scan {source.name}"
        if executor.catalog.has_table(source.name):
            rows = executor.catalog.table(source.name).n_rows
            return f"scan {source.name} ({rows} rows)"
        return f"scan {source.name}"
    return f"derived table {source.alias}"


def _index_note(executor, join) -> str:
    source = join.source.source
    if not isinstance(source, ast.TableRef) \
            or not executor.options.use_indexes \
            or not executor.catalog.has_table(source.name):
        return ""
    key_names = [ref.name for ref in join.right_keys]
    index = executor.catalog.find_index(source.name, key_names)
    if index is not None:
        return f" [index {index.name}]"
    return ""
