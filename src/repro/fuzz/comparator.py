"""Decide whether two result sets agree.

Rules, stated once so every divergence report means the same thing:

* Results are **multisets of rows**; ordering never counts.  Rows are
  canonically sorted before comparison (NULL sorts first, then by type
  rank, then by value), so engines with different ORDER BY NULL
  placement still compare equal.
* ``NULL == NULL`` -- inside a result set NULL is a value (Gray's
  data-cube convention for NULL groups), not three-valued unknown.
* Numerics compare with ``math.isclose(rel_tol=1e-9, abs_tol=1e-9)``;
  ``8`` equals ``8.0`` (engines legitimately differ on sum() width).
  NaN equals NaN.
* Booleans are compared as integers (sqlite returns 0/1).
* An **error is an outcome**: if every variant raises, the case is
  consistent (the engines agree the input is degenerate); if some
  raise and some return rows, that is a divergence.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Sequence

REL_TOL = 1e-9
ABS_TOL = 1e-9


def _canonical_cell(value: Any):
    """Sort key for one cell: total order over NULL/number/str."""
    if value is None:
        return (0, "")
    if isinstance(value, bool):
        return (1, float(value))
    if isinstance(value, (int, float)):
        if isinstance(value, float) and math.isnan(value):
            return (1, float("-inf"))
        return (1, round(float(value), 9))
    return (2, str(value))


def normalize_rows(rows: Sequence[Sequence[Any]]
                   ) -> list[tuple[Any, ...]]:
    """Canonically sorted copy of a result set."""
    return sorted((tuple(r) for r in rows),
                  key=lambda row: tuple(_canonical_cell(c) for c in row))


def cells_equal(a: Any, b: Any) -> bool:
    if a is None or b is None:
        return a is None and b is None
    if isinstance(a, bool) or isinstance(b, bool):
        a, b = int(a), int(b)
    if isinstance(a, (int, float)) and isinstance(b, (int, float)):
        if math.isnan(a) or math.isnan(b):
            return math.isnan(a) and math.isnan(b)
        return math.isclose(a, b, rel_tol=REL_TOL, abs_tol=ABS_TOL)
    return a == b


def rows_equal(left: Sequence[Sequence[Any]],
               right: Sequence[Sequence[Any]]) -> Optional[str]:
    """None when the multisets agree, else a one-line explanation."""
    left, right = normalize_rows(left), normalize_rows(right)
    if len(left) != len(right):
        return f"row count {len(left)} vs {len(right)}"
    for i, (a, b) in enumerate(zip(left, right)):
        if len(a) != len(b):
            return f"row {i}: arity {len(a)} vs {len(b)}"
        for j, (x, y) in enumerate(zip(a, b)):
            if not cells_equal(x, y):
                return f"row {i} col {j}: {x!r} vs {y!r}"
    return None


def compare_outcomes(base: tuple, other: tuple) -> Optional[str]:
    """Compare two ``("rows", rows)`` / ``("error", name)`` outcomes.

    Errors only match errors (any class -- engines word degenerate
    input differently); rows must match as a multiset.
    """
    if base[0] != other[0]:
        return f"{base[0]} ({_brief(base)}) vs {other[0]} ({_brief(other)})"
    if base[0] == "error":
        return None
    return rows_equal(base[1], other[1])


def _brief(outcome: tuple) -> str:
    if outcome[0] == "error":
        return str(outcome[1])
    return f"{len(outcome[1])} rows"
