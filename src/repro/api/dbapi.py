"""A PEP 249 (DB-API 2.0) driver for the in-memory engine.

The paper's experiments ran "a Java program ... connecting to the DBMS
through the JDBC interface"; this module is the Python equivalent of
that client-side layer, so examples and benchmarks can talk to the
engine the way any Python database application would:

    >>> import repro.api.dbapi as dbapi
    >>> conn = dbapi.connect()
    >>> cur = conn.cursor()
    >>> cur.execute("CREATE TABLE t (a INT, b VARCHAR)")
    >>> cur.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
    >>> cur.execute("SELECT a, b FROM t WHERE a > ?", (1,))
    >>> cur.fetchall()
    [(2, 'y')]

``paramstyle`` is ``qmark``; parameters are bound by literal
substitution with proper quoting (the engine has no prepared-statement
layer).

Thread affinity
---------------
Connections are thread-safe by default (``threadsafety = 2``: the
engine serializes statements under one lock), but cursor *state* --
``description``, ``rowcount``, the fetch position -- is per-cursor and
unsynchronized, so two threads sharing one cursor silently interleave
fetches.  ``connect(..., check_same_thread=True)`` opts into the
sqlite3-style affinity guard: the connection (and every cursor it
creates) may then only be used from the thread that opened it, and any
cross-thread call raises the typed
:class:`~repro.errors.CrossThreadError` instead of corrupting state.
The service layer (:mod:`repro.service`) enables the guard on each
session's private connection; threads that need concurrency should use
one connection per thread or go through the service's scheduler.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Optional, Sequence

from repro.api.database import Database
from repro.engine.table import Table
from repro.engine.types import SQLType
from repro.errors import (CrossThreadError, ExecutionError, ReproError,
                          ResourceExhausted)

apilevel = "2.0"
#: Threads may share the module and connections: the Database
#: serializes statements under one lock.  (Cursor fetch state is still
#: per-cursor; see the thread-affinity note above.)
threadsafety = 2
paramstyle = "qmark"


class Error(Exception):
    """DB-API base error."""


class InterfaceError(Error):
    pass


class DatabaseError(Error):
    pass


class ProgrammingError(DatabaseError):
    pass


class OperationalError(DatabaseError):
    pass


#: DB-API type codes exposed in cursor.description.
STRING = SQLType.VARCHAR
NUMBER = SQLType.REAL
ROWID = SQLType.INTEGER


def connect(database: Optional[Database] = None,
            check_same_thread: bool = False, **options) -> "Connection":
    """Open a connection.

    Pass an existing :class:`Database` to share state between
    connections (several cursors over one catalog), or keyword options
    forwarded to the :class:`Database` constructor for a fresh one.
    ``check_same_thread=True`` binds the connection to the calling
    thread (see the thread-affinity note in the module docstring).
    """
    return Connection(database or Database(**options),
                      check_same_thread=check_same_thread)


class Connection:
    """A DB-API connection wrapping one :class:`Database`."""

    Error = Error
    ProgrammingError = ProgrammingError

    def __init__(self, database: Database,
                 check_same_thread: bool = False):
        self._database: Optional[Database] = database
        self._check_same_thread = bool(check_same_thread)
        self._owner_thread = threading.get_ident()
        self._deadline_seconds: Optional[float] = None

    def set_deadline(self, seconds: Optional[float]) -> None:
        """Per-statement wall-clock deadline applied to every execute
        on this connection's cursors (``None`` clears it).  A deadline
        overrun surfaces as :class:`OperationalError` wrapping the
        typed :class:`~repro.errors.QueryCancelledError`."""
        if seconds is not None and seconds <= 0:
            raise InterfaceError("deadline must be > 0 seconds")
        self._check_thread()
        self._deadline_seconds = seconds

    @property
    def deadline_seconds(self) -> Optional[float]:
        return self._deadline_seconds

    @property
    def database(self) -> Database:
        self._check_thread()
        if self._database is None:
            raise InterfaceError("connection is closed")
        return self._database

    def _check_thread(self) -> None:
        if (self._check_same_thread
                and threading.get_ident() != self._owner_thread):
            raise CrossThreadError(
                f"this connection was created in thread "
                f"{self._owner_thread} and check_same_thread is on; it "
                f"cannot be used from thread {threading.get_ident()}")

    def cursor(self) -> "Cursor":
        self._check_thread()
        return Cursor(self)

    def commit(self) -> None:
        """No-op: the engine is non-transactional (auto-commit)."""
        self.database  # raises if closed

    def rollback(self) -> None:
        raise OperationalError(
            "the engine is non-transactional; rollback is unsupported")

    def close(self) -> None:
        self._database = None

    def __enter__(self) -> "Connection":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Cursor:
    """A DB-API cursor.

    ``description`` is the 7-tuple sequence required by PEP 249 with
    name and type_code filled in; ``rowcount`` is the DML row count or
    the SELECT result size.
    """

    arraysize = 1

    def __init__(self, connection: Connection):
        self.connection = connection
        self.description: Optional[list[tuple]] = None
        self.rowcount: int = -1
        self._rows: list[tuple[Any, ...]] = []
        self._cursor_position = 0
        self._closed = False

    # ------------------------------------------------------------------
    def execute(self, operation: str,
                parameters: Sequence[Any] = ()) -> "Cursor":
        self._check_open()
        sql = _bind_parameters(operation, parameters)
        try:
            result = self.connection.database.execute(
                sql,
                deadline_seconds=self.connection.deadline_seconds)
        except ReproError as exc:
            raise _map_error(exc) from exc
        if isinstance(result, Table):
            self._rows = result.to_rows()
            self._cursor_position = 0
            self.rowcount = len(self._rows)
            self.description = [
                (col.name, col.sql_type, None, None, None, None, None)
                for col in result.schema.columns]
        else:
            self._rows = []
            self._cursor_position = 0
            self.rowcount = int(result)
            self.description = None
        return self

    def executemany(self, operation: str,
                    seq_of_parameters: Iterable[Sequence[Any]]
                    ) -> "Cursor":
        for parameters in seq_of_parameters:
            self.execute(operation, parameters)
        return self

    def executescript(self, script: str) -> "Cursor":
        """Non-standard convenience: run a multi-statement script."""
        self._check_open()
        try:
            self.connection.database.execute_script(
                script,
                deadline_seconds=self.connection.deadline_seconds)
        except ReproError as exc:
            raise _map_error(exc) from exc
        self._rows = []
        self.description = None
        self.rowcount = -1
        return self

    # ------------------------------------------------------------------
    def fetchone(self) -> Optional[tuple[Any, ...]]:
        self._check_open()
        if self._cursor_position >= len(self._rows):
            return None
        row = self._rows[self._cursor_position]
        self._cursor_position += 1
        return row

    def fetchmany(self, size: Optional[int] = None
                  ) -> list[tuple[Any, ...]]:
        self._check_open()
        size = size or self.arraysize
        chunk = self._rows[self._cursor_position:
                           self._cursor_position + size]
        self._cursor_position += len(chunk)
        return chunk

    def fetchall(self) -> list[tuple[Any, ...]]:
        self._check_open()
        chunk = self._rows[self._cursor_position:]
        self._cursor_position = len(self._rows)
        return chunk

    def __iter__(self):
        while True:
            row = self.fetchone()
            if row is None:
                return
            yield row

    # ------------------------------------------------------------------
    def setinputsizes(self, sizes) -> None:  # pragma: no cover - PEP 249
        pass

    def setoutputsize(self, size, column=None) -> None:  # pragma: no cover
        pass

    def close(self) -> None:
        self._closed = True
        self._rows = []

    def _check_open(self) -> None:
        if self._closed:
            raise InterfaceError("cursor is closed")
        self.connection.database  # raises if connection closed


# ----------------------------------------------------------------------
def _map_error(exc: ReproError) -> DatabaseError:
    """PEP 249 classification: statement problems are programming
    errors; runtime failures (budget overruns, transient faults) are
    operational -- the class a retry loop is expected to catch."""
    if isinstance(exc, (ResourceExhausted, ExecutionError)):
        return OperationalError(str(exc))
    return ProgrammingError(str(exc))


def _bind_parameters(operation: str, parameters: Sequence[Any]) -> str:
    """Substitute qmark placeholders with quoted literals.

    The tokenizer is reused so '?' inside string literals or comments
    is never touched.
    """
    if not parameters:
        if "?" in _strip_literals(operation):
            raise ProgrammingError(
                "statement has placeholders but no parameters given")
        return operation
    parameters = list(parameters)
    pieces: list[str] = []
    used = 0
    i = 0
    text = operation
    # Walk the raw text, but consult tokenization for literal spans.
    literal_spans = _literal_spans(text)
    while i < len(text):
        ch = text[i]
        if ch == "?" and not _in_spans(i, literal_spans):
            if used >= len(parameters):
                raise ProgrammingError(
                    "more placeholders than parameters")
            pieces.append(_quote(parameters[used]))
            used += 1
        else:
            pieces.append(ch)
        i += 1
    if used != len(parameters):
        raise ProgrammingError(
            f"{len(parameters)} parameters supplied but {used} "
            f"placeholders found")
    return "".join(pieces)


def _literal_spans(text: str) -> list[tuple[int, int]]:
    spans = []
    i = 0
    while i < len(text):
        if text[i] == "'":
            start = i
            i += 1
            while i < len(text):
                if text[i] == "'":
                    if i + 1 < len(text) and text[i + 1] == "'":
                        i += 2
                        continue
                    break
                i += 1
            spans.append((start, i))
        i += 1
    return spans


def _in_spans(position: int, spans: list[tuple[int, int]]) -> bool:
    return any(start <= position <= end for start, end in spans)


def _strip_literals(text: str) -> str:
    spans = _literal_spans(text)
    return "".join(ch for i, ch in enumerate(text)
                   if not _in_spans(i, spans))


def _quote(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    raise ProgrammingError(f"cannot bind parameter of type "
                           f"{type(value).__name__}")
