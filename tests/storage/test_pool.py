"""Buffer-pool unit tests: LRU behavior, counters, registry metrics."""

import os

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.storage.disk import DiskManager
from repro.storage.pool import BufferPool

PAGE_SIZE = 256


@pytest.fixture
def disk(tmp_path):
    manager = DiskManager(os.path.join(tmp_path, "data.pages"),
                          page_size=PAGE_SIZE)
    yield manager
    manager.close()


def _seed_pages(disk, count):
    ids = disk.allocate(count)
    for page_id in ids:
        disk.write_page(page_id, f"payload-{page_id}".encode())
    return ids


def test_miss_then_hit(disk):
    (page,) = _seed_pages(disk, 1)
    pool = BufferPool(disk, capacity_pages=4)
    payloads, hits, misses = pool.fetch_many([page])
    assert payloads == [f"payload-{page}".encode()]
    assert (hits, misses) == (0, 1)
    payloads, hits, misses = pool.fetch_many([page, page])
    assert (hits, misses) == (2, 0)
    assert pool.hits == 2 and pool.misses == 1


def test_lru_evicts_least_recently_used(disk):
    p0, p1, p2 = _seed_pages(disk, 3)
    pool = BufferPool(disk, capacity_pages=2)
    pool.fetch(p0)
    pool.fetch(p1)
    pool.fetch(p0)          # p0 now most recent; p1 is the LRU
    pool.fetch(p2)          # evicts p1
    assert pool.evictions == 1
    assert pool.resident_pages() == 2
    before = pool.misses
    pool.fetch(p0)          # still resident
    assert pool.misses == before
    pool.fetch(p1)          # was evicted: must re-read
    assert pool.misses == before + 1


def test_write_through_caches_the_payload(disk):
    (page,) = [disk.allocate(1)[0]]
    pool = BufferPool(disk, capacity_pages=2)
    pool.write(page, b"fresh")
    assert pool.pages_written == 1
    # Write-through caching: the following fetch is a pure hit, and
    # the bytes are already on disk for an uncached reader.
    _, hits, misses = pool.fetch_many([page])
    assert (hits, misses) == (1, 0)
    assert disk.read_page(page) == b"fresh"


def test_invalidate_drops_cached_pages(disk):
    (page,) = _seed_pages(disk, 1)
    pool = BufferPool(disk, capacity_pages=2)
    pool.fetch(page)
    pool.invalidate([page])
    assert pool.resident_pages() == 0
    _, hits, misses = pool.fetch_many([page])
    assert (hits, misses) == (0, 1)


def test_info_counters(disk):
    p0, p1 = _seed_pages(disk, 2)
    pool = BufferPool(disk, capacity_pages=1)
    pool.fetch(p0)
    pool.fetch(p0)
    pool.fetch(p1)          # miss + eviction of p0
    info = pool.info()
    assert info["capacity"] == 1
    assert info["pages"] == 1
    assert info["hits"] == 1
    assert info["misses"] == 2
    assert info["evictions"] == 1
    assert info["hit_rate"] == pytest.approx(1 / 3)


def test_registry_metrics(disk):
    p0, p1 = _seed_pages(disk, 2)
    registry = MetricsRegistry()
    pool = BufferPool(disk, capacity_pages=1, registry=registry)
    pool.fetch(p0)
    pool.fetch(p0)
    pool.fetch(p1)
    pool.write(p0, b"new")
    assert registry.value("storage_pool_hits_total") == 1
    assert registry.value("storage_pool_misses_total") == 2
    assert registry.value("storage_pool_evictions_total") == 2
    assert registry.value("storage_bytes_read") == 2 * PAGE_SIZE
    assert registry.value("storage_bytes_written") == PAGE_SIZE


def test_capacity_must_be_positive(disk):
    with pytest.raises(ValueError):
        BufferPool(disk, capacity_pages=0)
