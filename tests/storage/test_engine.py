"""Disk-backend end-to-end tests: durability, recovery, EXPLAIN,
stats accounting, checkpoint reclamation and configuration errors."""

import json
import os

import pytest

from repro import Database
from repro.errors import StorageError
from repro.service import SessionDefaults
from tests.conftest import PAPER_SALES_ROWS

SALES_SCHEMA = [("rid", "int"), ("state", "varchar"),
                ("city", "varchar"), ("salesamt", "real")]


def _disk_db(path, **kwargs):
    kwargs.setdefault("pool_pages", 8)
    kwargs.setdefault("page_size", 512)
    return Database(storage="disk", storage_path=str(path), **kwargs)


def _load_sales(db):
    db.load_table("sales", SALES_SCHEMA, PAPER_SALES_ROWS,
                  primary_key=["rid"])


# ----------------------------------------------------------------------
# Durability and recovery
# ----------------------------------------------------------------------
def test_results_match_memory_backend(tmp_path):
    query = ("SELECT state, SUM(salesamt) AS total FROM sales "
             "GROUP BY state ORDER BY state")
    mem = Database()
    _load_sales(mem)
    with _disk_db(tmp_path) as db:
        _load_sales(db)
        assert db.query(query) == mem.query(query)


def test_dml_survives_reopen(tmp_path):
    with _disk_db(tmp_path) as db:
        _load_sales(db)
        db.execute("UPDATE sales SET salesamt = 99.0 WHERE rid = 1")
        db.execute("DELETE FROM sales WHERE state = 'TX'")
        expected = db.query("SELECT * FROM sales ORDER BY rid")
    with _disk_db(tmp_path) as db:
        assert db.query("SELECT * FROM sales ORDER BY rid") == expected


def test_views_and_indexes_recovered(tmp_path):
    with _disk_db(tmp_path) as db:
        _load_sales(db)
        db.execute("CREATE VIEW ca_sales AS SELECT * FROM sales "
                   "WHERE state = 'CA'")
        db.execute("CREATE INDEX idx_state ON sales (state)")
        expected = db.query("SELECT rid FROM ca_sales ORDER BY rid")
    with _disk_db(tmp_path) as db:
        assert db.query("SELECT rid FROM ca_sales ORDER BY rid") \
            == expected
        assert "idx_state" in [name.lower()
                               for name in db.catalog.index_names()]


def test_drop_table_survives_reopen(tmp_path):
    with _disk_db(tmp_path) as db:
        _load_sales(db)
        db.load_table("other", [("a", "int")], [(1,)])
        db.drop_table("other")
    with _disk_db(tmp_path) as db:
        assert db.table_names() == ["sales"]


def test_abandon_recovers_committed_state(tmp_path):
    # abandon() releases handles without checkpointing -- the on-disk
    # state is what a kill would leave; reopen must replay the WAL.
    db = _disk_db(tmp_path)
    _load_sales(db)
    db.execute("UPDATE sales SET salesamt = 7.0 WHERE rid = 2")
    expected = db.query("SELECT * FROM sales ORDER BY rid")
    db.storage_engine.abandon()
    with _disk_db(tmp_path) as db:
        assert db.query("SELECT * FROM sales ORDER BY rid") == expected


def test_page_size_mismatch_rejected(tmp_path):
    with _disk_db(tmp_path, page_size=512):
        pass
    with pytest.raises(StorageError, match="page_size"):
        _disk_db(tmp_path, page_size=1024)


def test_unreadable_checkpoint_rejected(tmp_path):
    with _disk_db(tmp_path) as db:
        _load_sales(db)
    with open(os.path.join(tmp_path, "checkpoint.json"), "w") as fh:
        fh.write("{not json")
    with pytest.raises(StorageError, match="unreadable checkpoint"):
        _disk_db(tmp_path)


# ----------------------------------------------------------------------
# Checkpoint reclamation
# ----------------------------------------------------------------------
def test_checkpoint_truncates_wal_and_reclaims_pages(tmp_path):
    with _disk_db(tmp_path) as db:
        _load_sales(db)
        # Each UPDATE shadow-writes the whole table; its old pages
        # become garbage reclaimable only at the next checkpoint.
        for value in (1.0, 2.0, 3.0):
            db.execute(f"UPDATE sales SET salesamt = {value} "
                       f"WHERE rid = 1")
        assert db.storage_info()["wal_bytes"] > 0
        allocated = db.storage_info()["allocated_pages"]
        db.checkpoint()
        info = db.storage_info()
        assert info["wal_bytes"] == 0
        assert info["free_pages"] > 0
        assert info["allocated_pages"] == allocated
        # Reclaimed pages are reused, not appended after.
        db.execute("UPDATE sales SET salesamt = 4.0 WHERE rid = 1")
        assert db.storage_info()["allocated_pages"] == allocated


def test_store_directory_stays_clean(tmp_path):
    with _disk_db(tmp_path) as db:
        _load_sales(db)
        db.checkpoint()
    assert sorted(os.listdir(tmp_path)) == \
        ["checkpoint.json", "data.pages", "wal.log"]


# ----------------------------------------------------------------------
# EXPLAIN and stats accounting
# ----------------------------------------------------------------------
def _explain_lines(db, sql):
    return [row[0] for row in db.execute(f"EXPLAIN {sql}").to_rows()]


def test_explain_reports_storage_line(tmp_path):
    with _disk_db(tmp_path) as db:
        _load_sales(db)
        lines = _explain_lines(db, "SELECT * FROM sales")
        storage_lines = [l for l in lines if l.startswith("storage:")]
        assert len(storage_lines) == 1
        assert storage_lines[0].startswith(
            "storage: disk page_size=512 pool=")
        # The cache line stays last (other tests pin that position);
        # the storage line slots in just before it.
        assert lines[-1].startswith("encoding cache:")
        assert lines[-2] == storage_lines[0]


def test_explain_omits_storage_line_on_memory_backend():
    db = Database()
    _load_sales(db)
    lines = _explain_lines(db, "SELECT * FROM sales")
    assert not [l for l in lines if l.startswith("storage:")]


def test_stats_ledger_invariant(tmp_path):
    with _disk_db(tmp_path, pool_pages=2) as db:
        _load_sales(db)
        for _ in range(3):
            db.query("SELECT SUM(salesamt) FROM sales")
        stats = db.stats
        assert stats.storage_page_fetches > 0
        assert stats.storage_pool_hits + stats.storage_page_reads \
            == stats.storage_page_fetches
        # The ledger counts exactly the pool's fetch traffic.
        pool = db.storage_engine.pool
        assert pool.hits + pool.misses >= stats.storage_page_fetches


def test_memory_backend_never_charges_storage_counters():
    db = Database()
    _load_sales(db)
    db.query("SELECT SUM(salesamt) FROM sales")
    assert db.stats.storage_page_fetches == 0


def test_tiny_pool_forces_evictions_without_changing_answers(tmp_path):
    query = "SELECT state, city, salesamt FROM sales ORDER BY rid"
    mem = Database()
    _load_sales(mem)
    with _disk_db(tmp_path, pool_pages=1, page_size=64) as db:
        _load_sales(db)
        assert db.query(query) == mem.query(query)
        assert db.storage_engine.pool.evictions > 0


# ----------------------------------------------------------------------
# Configuration surface
# ----------------------------------------------------------------------
def test_database_kwarg_validation(tmp_path):
    with pytest.raises(ValueError, match="storage must be one of"):
        Database(storage="tape")
    with pytest.raises(ValueError, match="requires storage_path"):
        Database(storage="disk")
    with pytest.raises(ValueError, match="only valid with"):
        Database(storage_path=str(tmp_path))
    with pytest.raises(ValueError, match="pool_pages"):
        _disk_db(tmp_path, pool_pages=0)


def test_storage_info_backends(tmp_path):
    assert Database().storage_info() == {"backend": "memory"}
    with _disk_db(tmp_path) as db:
        info = db.storage_info()
        assert info["backend"] == "disk"
        assert info["page_size"] == 512
        assert info["pool"]["capacity"] == 8


def test_memory_close_and_checkpoint_are_noops():
    db = Database()
    _load_sales(db)
    db.checkpoint()
    db.close()
    db.close()


def test_session_storage_pin(tmp_path):
    with _disk_db(tmp_path) as db:
        base = db.options
        assert SessionDefaults(storage="disk").resolve(base).storage \
            == "disk"
        with pytest.raises(ValueError, match="pinned storage"):
            SessionDefaults(storage="memory").resolve(base)
    with pytest.raises(ValueError, match="storage must be"):
        SessionDefaults(storage="floppy")


def test_checkpoint_manifest_is_json(tmp_path):
    with _disk_db(tmp_path) as db:
        _load_sales(db)
    with open(os.path.join(tmp_path, "checkpoint.json")) as fh:
        state = json.load(fh)
    assert state["format"] == 1
    assert state["page_size"] == 512
    assert "sales" in state["tables"]
    entry = state["tables"]["sales"]
    assert entry["n_rows"] == len(PAPER_SALES_ROWS)
    assert set(entry["pages"]) == {"rid", "state", "city", "salesamt"}
