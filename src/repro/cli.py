"""An interactive SQL shell for the engine with percentage-query
support.

Run with ``python -m repro``.  Statements ending in ';' execute
against an in-memory database; queries containing ``Vpct``/``Hpct``/
BY-extended aggregates are routed through the code generator
automatically (like the paper's front end would).

Shell commands:

* ``\\tables``                list tables
* ``\\schema NAME``          show a table's columns
* ``\\plan SQL``             show the generated plan for a percentage
  query without running it
* ``\\strategy vertical ...`` / ``\\strategy horizontal F|FV|SPJ``
  pin the evaluation strategy (``\\strategy auto`` resets)
* ``\\load employee|sales|transactionline|census [N]``
  generate one of the papers' synthetic tables
* ``\\stats``                cumulative engine counters
* ``\\quit``
"""

from __future__ import annotations

import sys
from typing import Optional

from repro import Database
from repro.api.display import format_table
from repro.core import (HorizontalAggStrategy, HorizontalStrategy,
                        VerticalStrategy, generate_plan,
                        run_percentage_query)
from repro.core.model import parse_percentage_query
from repro.engine.table import Table
from repro.errors import ReproError
from repro.sql import ast
from repro.sql.parser import parse_statement

PROMPT = "repro> "
CONTINUATION = "   ... "


class Shell:
    """State and command dispatch for the interactive shell."""

    def __init__(self, db: Optional[Database] = None,
                 out=sys.stdout):
        self.db = db or Database(keep_history=True)
        self.out = out
        self.strategy = None  # None = let the optimizer choose

    # ------------------------------------------------------------------
    def write(self, text: str = "") -> None:
        print(text, file=self.out)

    def handle(self, line: str) -> bool:
        """Process one complete input; returns False to exit."""
        stripped = line.strip()
        if not stripped:
            return True
        if stripped.startswith("\\"):
            return self._command(stripped)
        return self._sql(stripped.rstrip(";"))

    # ------------------------------------------------------------------
    def _command(self, line: str) -> bool:
        parts = line.split(None, 1)
        name = parts[0][1:].lower()
        argument = parts[1].strip() if len(parts) > 1 else ""
        if name in ("quit", "q", "exit"):
            return False
        if name == "tables":
            for table in sorted(self.db.table_names()):
                self.write(f"  {table}")
            return True
        if name == "schema":
            return self._schema(argument)
        if name == "plan":
            return self._plan(argument.rstrip(";"))
        if name == "strategy":
            return self._strategy(argument)
        if name == "load":
            return self._load(argument)
        if name == "stats":
            stats = self.db.stats
            self.write(f"  statements={stats.statements} "
                       f"scanned={stats.rows_scanned} "
                       f"written={stats.rows_written} "
                       f"updated={stats.rows_updated} "
                       f"case_evals={stats.case_evaluations} "
                       f"index_lookups={stats.index_lookups}")
            return True
        self.write(f"unknown command \\{name} (try \\quit, \\tables, "
                   f"\\schema, \\plan, \\strategy, \\load, \\stats)")
        return True

    def _schema(self, name: str) -> bool:
        if not name:
            self.write("usage: \\schema TABLE")
            return True
        try:
            schema = self.db.table(name).schema
        except ReproError as exc:
            self.write(f"error: {exc}")
            return True
        for column in schema.columns:
            marker = " (pk)" if column.name in schema.primary_key \
                else ""
            self.write(f"  {column.name} {column.sql_type}{marker}")
        return True

    def _plan(self, sql: str) -> bool:
        if not sql:
            self.write("usage: \\plan SELECT ... Vpct(...) ...")
            return True
        try:
            plan = generate_plan(self.db, sql, self.strategy)
        except ReproError as exc:
            self.write(f"error: {exc}")
            return True
        self.write(f"-- strategy: {plan.description}")
        self.write(plan.sql_script())
        return True

    def _strategy(self, argument: str) -> bool:
        words = argument.lower().split()
        try:
            self.strategy = _parse_strategy(words)
        except ValueError as exc:
            self.write(f"error: {exc}")
            return True
        label = "optimizer's choice" if self.strategy is None \
            else self.strategy.describe()
        self.write(f"strategy = {label}")
        return True

    def _load(self, argument: str) -> bool:
        from repro.datagen import (load_census, load_employee,
                                   load_sales, load_transaction_line)
        loaders = {"employee": (load_employee, 100_000),
                   "sales": (load_sales, 500_000),
                   "transactionline": (load_transaction_line, 100_000),
                   "census": (load_census, 50_000)}
        words = argument.split()
        if not words or words[0].lower() not in loaders:
            self.write(f"usage: \\load {'|'.join(loaders)} [N]")
            return True
        loader, default_n = loaders[words[0].lower()]
        n_rows = int(words[1]) if len(words) > 1 else default_n
        table = loader(self.db, n_rows)
        self.write(f"loaded {table.name} ({table.n_rows:,} rows)")
        return True

    # ------------------------------------------------------------------
    def _sql(self, sql: str) -> bool:
        try:
            result = self._execute(sql)
        except ReproError as exc:
            self.write(f"error: {exc}")
            return True
        if isinstance(result, Table):
            self.write(format_table(result))
        else:
            self.write(f"ok ({result} rows)")
        return True

    def _execute(self, sql: str):
        statement = parse_statement(sql)
        if isinstance(statement, ast.Select) and any(
                not isinstance(item.expr, ast.Star)
                and ast.contains_extended(item.expr)
                for item in statement.items):
            query = parse_percentage_query(sql)
            return run_percentage_query(self.db, query, self.strategy)
        return self.db.execute_statement(statement, sql)


def _parse_strategy(words: list[str]):
    if not words or words[0] in ("auto", "optimizer"):
        return None
    if words[0] == "vertical":
        flags = set(words[1:])
        return VerticalStrategy(
            fj_from_fk="fj_from_f" not in flags,
            use_update="update" in flags,
            create_indexes="noindex" not in flags,
            single_statement="single" in flags)
    if words[0] == "horizontal":
        source = words[1].upper() if len(words) > 1 else "F"
        if source == "SPJ":
            return HorizontalAggStrategy(
                source=words[2].upper() if len(words) > 2 else "F")
        if source in ("F", "FV"):
            return HorizontalStrategy(source=source)
    raise ValueError(
        "usage: \\strategy auto | vertical [update|fj_from_f|noindex|"
        "single] | horizontal F|FV | horizontal SPJ [F|FV]")


def main(argv: Optional[list[str]] = None) -> int:
    """Entry point: read statements from stdin until EOF or \\quit."""
    shell = Shell()
    shell.write("repro SQL shell -- Vpct()/Hpct() ready; \\quit to "
                "exit, \\load to generate paper data sets")
    buffer: list[str] = []
    while True:
        try:
            prompt = CONTINUATION if buffer else PROMPT
            line = input(prompt)
        except EOFError:
            break
        stripped = line.strip()
        if not buffer and stripped.startswith("\\"):
            if not shell.handle(stripped):
                break
            continue
        buffer.append(line)
        if stripped.endswith(";"):
            statement = "\n".join(buffer)
            buffer = []
            if not shell.handle(statement):
                break
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
