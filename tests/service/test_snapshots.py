"""Snapshot isolation: pinning, overlay privacy, shared services."""

from __future__ import annotations

import pytest

from repro.api.database import Database
from repro.core.execute import run_resilient
from repro.service import QueryService, SessionDefaults
from repro.service.snapshots import SnapshotDatabase


class TestSnapshotCapture:
    def test_version_tracks_catalog(self, service):
        first = service.snapshot()
        service.execute("INSERT INTO f VALUES (3, 'z', 1.0)")
        second = service.snapshot()
        assert second.version > first.version

    def test_equal_versions_equal_fingerprints(self, service):
        assert service.snapshot().fingerprint == \
            service.snapshot().fingerprint

    def test_table_identities(self, service):
        identities = service.snapshot().table_identities()
        assert set(identities) == {"f"}
        name, _version = identities["f"]
        assert name == "f"


class TestSnapshotReader:
    def test_reader_pinned_across_writes(self, service, db):
        reader = service.snapshots.reader(service.snapshot())
        service.execute("INSERT INTO f VALUES (3, 'z', 1.0)")
        assert reader.query("SELECT count(*) FROM f") == [(4,)]
        assert db.query("SELECT count(*) FROM f") == [(5,)]

    def test_same_results_as_base(self, service, db):
        reader = service.snapshots.reader()
        sql = "SELECT d1, sum(a) FROM f GROUP BY d1 ORDER BY d1"
        assert reader.query(sql) == db.query(sql)

    def test_overlay_dml_invisible_to_base(self, service, db):
        reader = service.snapshots.reader()
        reader.execute("CREATE TABLE private (x INT)")
        reader.execute("INSERT INTO private VALUES (1)")
        assert reader.has_table("private")
        assert not db.has_table("private")
        reader.drop_table("private")

    def test_percentage_plan_runs_in_overlay(self, service, db):
        reader = service.snapshots.reader()
        before = db.catalog.fingerprint()
        report = run_resilient(
            reader, "SELECT d1, Vpct(a) FROM f GROUP BY d1")
        assert report.result.n_rows == 2
        # The multi-statement plan created and dropped temps entirely
        # inside the overlay; the base catalog never changed.
        assert db.catalog.fingerprint() == before
        assert not [n for n in reader.table_names()
                    if n.startswith("_")]

    def test_reader_shares_stats_and_cache(self, service, db):
        reader = service.snapshots.reader()
        assert reader.stats is db.stats
        assert reader.catalog.encoding_cache is db.catalog.encoding_cache
        assert reader.governor is db.governor

    def test_session_defaults_reach_reader_options(self, service, db):
        defaults = SessionDefaults(case_dispatch="hash",
                                   parallel_workers=3,
                                   parallel_row_threshold=7)
        reader = service.snapshots.reader(
            options=defaults.resolve(db.options))
        assert reader.options.case_dispatch == "hash"
        assert reader.options.parallel_degree == 3
        assert reader.options.parallel_row_threshold == 7
        # The base database's own options are untouched.
        assert db.options.case_dispatch == "linear"
        assert db.options.parallel_degree == 1

    def test_reader_is_a_database(self, service):
        assert isinstance(service.snapshots.reader(), Database)
        assert isinstance(service.snapshots.reader(), SnapshotDatabase)


class TestWriterInteraction:
    def test_acquire_waits_out_write_scripts(self, service):
        # A snapshot taken while the writer lock is held would tear the
        # script; acquisition must block until release.
        with service.write_lock:
            service.db.execute("INSERT INTO f VALUES (7, 'q', 1.0)")
            # Same thread: RLock reentry keeps this non-blocking here,
            # but the captured state must include the in-flight write
            # statement only because we are the writer.
            snap = service.snapshot()
        assert snap.version == service.db.catalog.version

    def test_failed_write_script_not_visible(self, service, db):
        before = service.snapshot()
        with pytest.raises(Exception):
            service.execute(
                "INSERT INTO f VALUES (8, 'r', 2.0); "
                "SELECT nope FROM missing_table")
        after = service.snapshot()
        assert after.fingerprint == before.fingerprint
        assert db.query("SELECT count(*) FROM f") == [(4,)]
