"""Property-based tests for the disk storage backend.

Two invariants over random data and DML sequences:

* a disk-backed database with a tiny buffer pool (so every query
  forces evictions) answers every query identically to the memory
  backend -- paging is invisible to query semantics;
* the per-statement stats ledger accounts for exactly the buffer
  pool's fetch traffic: ``storage_pool_hits + storage_page_reads ==
  storage_page_fetches`` and both sides match the pool's own counters.
"""

import shutil
import tempfile

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database

MEASURES = st.one_of(st.none(), st.integers(min_value=-100,
                                            max_value=100))
STATES = st.sampled_from(["CA", "TX", "AZ", "WA"])

ROWS = st.lists(st.tuples(STATES, MEASURES), min_size=0, max_size=20)

#: Statement sequences applied identically to both backends.  Each
#: replaces the whole table version on the disk backend, exercising
#: shadow paging + WAL commit + garbage accumulation.
DML = st.lists(st.sampled_from([
    "UPDATE t SET m = m + 1 WHERE state = 'CA'",
    "UPDATE t SET m = 0 WHERE m IS NULL",
    "DELETE FROM t WHERE state = 'TX'",
    "INSERT INTO t VALUES (99, 'NV', 7)",
]), max_size=4)

QUERIES = (
    "SELECT * FROM t ORDER BY rid",
    "SELECT state, SUM(m), COUNT(m), COUNT(*) FROM t "
    "GROUP BY state ORDER BY state",
    "SELECT MIN(m), MAX(m) FROM t",
)


def _load(db, rows):
    db.execute("CREATE TABLE t (rid INT, state VARCHAR, m INT)")
    if rows:
        values = ", ".join(
            f"({rid}, '{state}', {'NULL' if m is None else m})"
            for rid, (state, m) in enumerate(rows))
        db.execute(f"INSERT INTO t VALUES {values}")


@given(ROWS, DML)
@settings(max_examples=25, deadline=None)
def test_evictions_never_change_answers(rows, statements):
    mem = Database()
    _load(mem, rows)
    tmp = tempfile.mkdtemp(prefix="repro-prop-store-")
    disk = Database(storage="disk", storage_path=tmp,
                    pool_pages=1, page_size=64)
    try:
        _load(disk, rows)
        for statement in statements:
            assert mem.execute(statement) == disk.execute(statement)
        for query in QUERIES:
            assert mem.query(query) == disk.query(query)
    finally:
        disk.close()
        shutil.rmtree(tmp, ignore_errors=True)


@given(ROWS, DML)
@settings(max_examples=25, deadline=None)
def test_ledger_matches_pool_traffic(rows, statements):
    tmp = tempfile.mkdtemp(prefix="repro-prop-ledger-")
    db = Database(storage="disk", storage_path=tmp,
                  pool_pages=2, page_size=64)
    try:
        _load(db, rows)
        for statement in statements:
            db.execute(statement)
        for query in QUERIES:
            db.query(query)
        pool = db.storage_engine.pool
        stats = db.stats
        # Every page fetch the pool served was charged to the ledger
        # (and nothing else was): the split by hit/read agrees too.
        assert stats.storage_page_fetches == pool.hits + pool.misses
        assert stats.storage_pool_hits == pool.hits
        assert stats.storage_page_reads == pool.misses
    finally:
        db.close()
        shutil.rmtree(tmp, ignore_errors=True)


@given(ROWS)
@settings(max_examples=15, deadline=None)
def test_reopen_is_bit_identical(rows):
    """Committed state round-trips through close + reopen exactly."""
    tmp = tempfile.mkdtemp(prefix="repro-prop-reopen-")
    try:
        db = Database(storage="disk", storage_path=tmp,
                      pool_pages=2, page_size=64)
        _load(db, rows)
        expected = db.query("SELECT * FROM t ORDER BY rid")
        db.close()
        db = Database(storage="disk", storage_path=tmp,
                      pool_pages=2, page_size=64)
        try:
            assert db.query("SELECT * FROM t ORDER BY rid") == expected
        finally:
            db.close()
    finally:
        shutil.rmtree(tmp, ignore_errors=True)
