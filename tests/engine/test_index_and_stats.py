"""Unit tests for hash indexes and the statistics collector."""

import pytest

from repro import Database
from repro.engine.index import HashIndex
from repro.engine.schema import TableSchema
from repro.engine.stats import StatementStats, StatsCollector
from repro.engine.table import Table
from repro.engine.types import SQLType


def make_table():
    schema = TableSchema.build("t", [("a", SQLType.INTEGER),
                                     ("b", SQLType.VARCHAR)])
    return Table.from_rows(schema, [(1, "x"), (2, "y"), (1, "z")])


class TestHashIndex:
    def test_covers_is_order_insensitive(self):
        index = HashIndex("ix", "t", ["a", "b"])
        assert index.covers(["B", "A"])
        assert not index.covers(["a"])

    def test_point_lookup(self):
        index = HashIndex("ix", "t", ["a"])
        index.rebuild(make_table())
        assert index.lookup((1,)) == [0, 2]
        assert index.lookup((9,)) == []

    def test_prepared_side_built(self):
        index = HashIndex("ix", "t", ["a"])
        index.rebuild(make_table())
        assert index.prepared is not None
        assert index.built_rows == 3

    def test_join_uses_index(self):
        db = Database(keep_history=True)
        db.execute("CREATE TABLE big (k INT, v REAL)")
        db.execute("INSERT INTO big VALUES (1, 1.0), (2, 2.0)")
        db.execute("CREATE TABLE small (k INT, t REAL)")
        db.execute("INSERT INTO small VALUES (1, 10.0), (2, 20.0)")
        db.execute("CREATE INDEX ix ON small (k)")
        db.query("SELECT big.k FROM big, small WHERE big.k = small.k")
        assert db.stats.index_lookups > 0

    def test_index_disabled_option(self):
        db = Database(use_indexes=False, keep_history=True)
        db.execute("CREATE TABLE big (k INT)")
        db.execute("INSERT INTO big VALUES (1)")
        db.execute("CREATE TABLE small (k INT)")
        db.execute("INSERT INTO small VALUES (1)")
        db.execute("CREATE INDEX ix ON small (k)")
        db.query("SELECT big.k FROM big, small WHERE big.k = small.k")
        assert db.stats.index_lookups == 0


class TestStatsCollector:
    def test_snapshot_diff(self):
        stats = StatsCollector()
        stats.add(rows_scanned=10)
        before = stats.snapshot()
        stats.add(rows_scanned=5, rows_updated=2)
        diff = stats.diff_since(before)
        assert diff.rows_scanned == 5
        assert diff.rows_updated == 2

    def test_logical_io_weights_updates_double(self):
        record = StatementStats(rows_scanned=10, rows_written=5,
                                rows_updated=3)
        assert record.logical_io() == 10 + 5 + 2 * 3

    def test_reset(self):
        stats = StatsCollector()
        stats.add(rows_scanned=5)
        stats.reset()
        assert stats.rows_scanned == 0

    def test_direct_counter_writes_rejected(self):
        # Registry-backed counters: a bare ``stats.counter += n`` was
        # always a lost-update hazard; now it is an explicit error.
        stats = StatsCollector()
        with pytest.raises(AttributeError):
            stats.rows_scanned = 10

    def test_history_recording(self):
        db = Database(keep_history=True)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1)")
        assert len(db.stats.history) == 2
        last = db.last_statement_stats()
        assert last.rows_written == 1
        assert last.elapsed_seconds >= 0

    def test_scan_accounting(self):
        db = Database(keep_history=True)
        db.execute("CREATE TABLE t (a INT)")
        db.execute("INSERT INTO t VALUES (1), (2), (3)")
        before = db.stats.rows_scanned
        db.query("SELECT * FROM t")
        assert db.stats.rows_scanned - before == 3
