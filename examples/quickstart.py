"""Quickstart: the paper's two aggregations in five minutes.

Builds the SIGMOD paper's Table 1 example, runs a vertical percentage
query (reproducing Table 2), a horizontal one, and shows the standard
SQL the code generator emits.

Run:  python examples/quickstart.py
"""

from repro import Database
from repro.core import generate_plan, run_percentage_query


def print_table(result):
    names = result.column_names()
    print("  " + " | ".join(f"{n:>14s}" for n in names))
    for row in result.to_rows():
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(f"{value:>14.2f}")
            else:
                cells.append(f"{str(value):>14s}")
        print("  " + " | ".join(cells))
    print()


def main() -> None:
    db = Database()
    db.execute("""
        CREATE TABLE sales (
            rid INT, state VARCHAR, city VARCHAR, salesAmt REAL,
            PRIMARY KEY (rid))
    """)
    db.execute("""
        INSERT INTO sales VALUES
            (1, 'CA', 'San Francisco', 13), (2, 'CA', 'San Francisco', 3),
            (3, 'CA', 'San Francisco', 67), (4, 'CA', 'Los Angeles', 23),
            (5, 'TX', 'Houston', 5), (6, 'TX', 'Houston', 35),
            (7, 'TX', 'Houston', 10), (8, 'TX', 'Houston', 14),
            (9, 'TX', 'Dallas', 53), (10, 'TX', 'Dallas', 32)
    """)

    # ------------------------------------------------------------------
    # Vertical percentages: one row per percentage (paper Table 2).
    # ------------------------------------------------------------------
    vertical = ("SELECT state, city, Vpct(salesAmt BY city) "
                "FROM sales GROUP BY state, city")
    print("Vertical percentage query:")
    print(f"  {vertical}\n")
    print("Result (what % of its state each city contributed):")
    print_table(run_percentage_query(db, vertical))

    # ------------------------------------------------------------------
    # Horizontal percentages: each group's percentages on one row.
    # ------------------------------------------------------------------
    horizontal = ("SELECT state, Hpct(salesAmt BY city), "
                  "sum(salesAmt) FROM sales GROUP BY state")
    print("Horizontal percentage query:")
    print(f"  {horizontal}\n")
    print("Result (cities as columns, adding up to 100% per row):")
    print_table(run_percentage_query(db, horizontal))

    # ------------------------------------------------------------------
    # What actually runs: the generated standard SQL.
    # ------------------------------------------------------------------
    print("Generated standard-SQL plan for the vertical query:")
    plan = generate_plan(db, vertical)
    print(plan.sql_script())


if __name__ == "__main__":
    main()
