"""Multicore benchmark: the process backend versus thread and serial
execution on one compute-heavy grouped aggregation.

Written to ``BENCH_multicore.json`` by ``python -m repro.bench --suite
multicore``.  One query -- six aggregates over a three-column grouping
of the ``sales`` fact table -- is swept over 1/2/4/8 workers on both
parallel backends, every run asserted bit-identical to the serial
baseline.

Honesty note: the thread backend's kernels only overlap inside
numpy's GIL-released sections, so its scaling ceiling is low by
construction; the process backend is the one that can use real cores.
Both are bounded by ``os.cpu_count()``.  On hosts with fewer than 4
cores the speedup target is unreachable, so the suite records
``cpu_count`` and instead certifies the fallback criteria: process-
backend overhead within 10% of serial, and bit-identical results at
every degree (the same shape BENCH_concurrency.json uses).
"""

from __future__ import annotations

import os
import time

from repro.api.database import Database

#: The measured statement: enough aggregate work per row that kernel
#: compute dominates dispatch/merge overhead.
QUERY = ("SELECT dweek, monthno, dept, sum(salesamt), avg(salesamt), "
         "var(salesamt), count(*), min(salesamt), max(salesamt) "
         "FROM sales GROUP BY dweek, monthno, dept")


def _time_runs(db: Database, repeats: int) -> list[float]:
    runs = []
    for _ in range(repeats):
        started = time.perf_counter()
        db.query(QUERY)
        runs.append(time.perf_counter() - started)
    return runs


def _sweep(db: Database, backend: str, baseline_rows: list,
           worker_counts: tuple[int, ...], repeats: int,
           serial_best: float) -> list[dict]:
    entries = []
    for workers in worker_counts:
        db.set_parallel_workers(workers, row_threshold=1)
        db.set_parallel_backend(backend)
        rows = db.query(QUERY)
        runs = _time_runs(db, repeats)
        best = min(runs)
        entries.append({
            "backend": backend,
            "workers": workers,
            "best_seconds": round(best, 6),
            "runs": [round(r, 6) for r in runs],
            "speedup_vs_serial": round(serial_best / best, 4),
            "bit_identical_to_serial": rows == baseline_rows,
        })
    return entries


def run_multicore_benchmark(sales_n: int = 300_000,
                            repeats: int = 3,
                            worker_counts: tuple[int, ...] = (1, 2, 4, 8)
                            ) -> dict:
    """The full multicore suite; returns the JSON-ready report."""
    from repro.datagen import load_sales

    db = Database()
    load_sales(db, sales_n)

    db.set_parallel_workers(1)
    db.set_parallel_backend("serial")
    baseline_rows = db.query(QUERY)
    serial_runs = _time_runs(db, repeats)
    serial_best = min(serial_runs)

    process = _sweep(db, "process", baseline_rows, worker_counts,
                     repeats, serial_best)
    threads = _sweep(db, "thread", baseline_rows, worker_counts,
                     repeats, serial_best)
    db.set_parallel_workers(1)
    db.set_parallel_backend("serial")

    registry = db.stats.registry.samples()
    shm_bytes = sum(v for k, v in registry.items()
                    if k.startswith("engine_shm_bytes_exported"))

    cpu_count = os.cpu_count() or 1
    multicore_host = cpu_count >= 4
    best_process = min(e["best_seconds"] for e in process)
    overhead_fraction = (best_process - serial_best) / serial_best
    speedup_at_4 = next((e["speedup_vs_serial"] for e in process
                         if e["workers"] == 4), None)
    report = {
        "workload": f"sales n={sales_n}; {QUERY}",
        "cpu_count": cpu_count,
        "repeats": repeats,
        "note": "acceptance: >2x at 4 workers on hosts with >= 4 "
                "cores; on smaller hosts the suite certifies the "
                "fallback instead -- process-backend overhead within "
                "10% of serial and bit-identical results at every "
                "degree",
        "serial": {
            "best_seconds": round(serial_best, 6),
            "runs": [round(r, 6) for r in serial_runs],
            "rows": len(baseline_rows),
        },
        "process_backend": process,
        "thread_backend": threads,
        "shm_bytes_exported": int(shm_bytes),
        "summary": {
            "multicore_host": multicore_host,
            "process_speedup_at_4_workers": speedup_at_4,
            "speedup_target_met": (
                bool(speedup_at_4 and speedup_at_4 > 2.0)
                if multicore_host else None),
            "best_process_seconds": round(best_process, 6),
            "process_overhead_fraction": round(overhead_fraction, 4),
            "process_overhead_within_10pct":
                overhead_fraction <= 0.10,
            "all_results_bit_identical": all(
                e["bit_identical_to_serial"]
                for e in process + threads),
        },
    }
    return report
