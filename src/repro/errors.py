"""Exception hierarchy for the repro package.

Every error raised by the engine, the SQL front end, or the percentage
query code generator derives from :class:`ReproError`, so callers can
catch one base class.  The split mirrors where in the stack the problem
was detected:

* :class:`SQLSyntaxError` -- the SQL text could not be tokenized/parsed.
* :class:`PlanningError` -- the statement parsed but cannot be planned
  (unknown table/column, ambiguous reference, bad aggregate usage...).
* :class:`ExecutionError` -- a runtime failure while executing a plan.
* :class:`CatalogError` -- catalog violations (duplicate table, DBMS
  limits such as the maximum column count exceeded...).
* :class:`PercentageQueryError` -- a percentage query violates the usage
  rules of Vpct()/Hpct()/Hagg() defined in the paper (Section 3).

The resilient-execution layer adds a structured runtime taxonomy on
top of :class:`ExecutionError`, classified by *what the caller should
do next*:

* :class:`TransientError` (``retryable``) -- the failure is expected to
  go away on its own; the plan runner retries the whole plan with
  backoff after rolling the catalog back to its pre-plan savepoint.
* :class:`ResourceExhausted` (``fallback_eligible``) -- the query blew
  a resource budget; retrying the same plan would fail identically,
  but re-planning with the alternate evaluation strategy may succeed.
  Concrete budgets raise the subtypes :class:`QueryTimeout`
  (wall-clock; never falls back -- an alternate plan is not presumed
  faster), :class:`RowBudgetExceeded` and :class:`WidthBudgetExceeded`.
* :class:`SimulatedCrash` -- a fault-injection-only hard stop; neither
  retried nor replanned, it must surface to the caller after rollback
  (the crash-consistency sweep asserts the catalog is untouched).

Every class carries ``retryable`` / ``fallback_eligible`` flags so
policy code switches on capability, not on class identity.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package.

    ``retryable``: re-running the same plan may succeed.
    ``fallback_eligible``: re-planning with an alternate evaluation
    strategy may succeed.
    """

    retryable = False
    fallback_eligible = False


class SQLSyntaxError(ReproError):
    """The SQL text is malformed.

    Carries the position (1-based line and column) where tokenization or
    parsing failed, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class PlanningError(ReproError):
    """The statement is syntactically valid but cannot be planned."""


class GroupingSetError(PlanningError):
    """A CUBE/ROLLUP/GROUPING SETS clause is malformed (duplicate or
    empty grouping set, bad GROUPING() argument...).  The message
    always names the offending set so repros are self-describing."""

    def __init__(self, message: str, grouping_set: str | None = None):
        self.grouping_set = grouping_set
        if grouping_set is not None:
            message = f"{message}: {grouping_set}"
        super().__init__(message)


class ExecutionError(ReproError):
    """A failure occurred while executing a plan."""


class TransientError(ExecutionError):
    """A failure expected to disappear on retry (injected flaky I/O,
    a lost lock race...).  The plan runner retries with backoff."""

    retryable = True


class WorkerCrashError(TransientError):
    """A worker process of the multiprocess backend died (or stopped
    responding) mid-batch.  The pool rebuilds itself before raising,
    so a retry runs against fresh workers -- hence retryable."""


class ResourceExhausted(ExecutionError):
    """A per-query resource budget was exceeded.

    Retrying the identical plan is pointless, but the alternate
    evaluation strategy may stay within budget (e.g. the indirect
    FV route materializes narrower intermediates than a direct
    CASE pivot pass, and vice versa).
    """

    fallback_eligible = True


class QueryTimeout(ResourceExhausted):
    """The per-query wall-clock budget expired.

    Not fallback-eligible: an alternate strategy is not presumed any
    faster, so the timeout surfaces immediately after rollback.
    """

    fallback_eligible = False


class RowBudgetExceeded(ResourceExhausted):
    """The query materialized more rows than its budget allows."""


class WidthBudgetExceeded(ResourceExhausted):
    """A result or temp table is wider than the per-query budget."""


class SimulatedCrash(ExecutionError):
    """A fault-injection hard stop (process-crash stand-in).

    Never retried and never replanned: the point of injecting it is
    to prove the savepoint machinery restores the catalog.
    """


class QueryCancelledError(ExecutionError):
    """The query was cancelled cooperatively at a safepoint.

    ``reason`` records who pulled the plug: ``"client"`` (an explicit
    :meth:`~repro.engine.cancel.CancelToken.cancel` call), ``"deadline"``
    (the token's deadline passed) or ``"shed"`` (the service gave up on
    it under overload).  Neither retryable nor fallback-eligible: the
    caller asked for the query to stop, so the runtime's only job is to
    unwind cleanly through the savepoint/finally discipline and
    surface this error after rollback.
    """

    def __init__(self, message: str, reason: str = "client"):
        super().__init__(message)
        self.reason = reason


class CatalogError(ReproError):
    """A catalog invariant or DBMS limit was violated."""


class StorageError(ReproError):
    """A durable-storage failure (page allocation, WAL, checkpoint,
    store lifecycle).  Not retryable: storage errors indicate either
    misuse (closed engine) or on-disk damage that retrying cannot
    heal."""


class PageCorruptError(StorageError):
    """A page failed verification (bad magic, wrong page id, length
    out of range, or checksum mismatch) -- the torn-write detector.
    The message always names the page id so operators can map it back
    to a table via the checkpoint manifest."""


class ServiceError(ReproError):
    """Base class for concurrent-query-service failures (sessions,
    admission control, scheduling)."""


class AdmissionRejected(ServiceError):
    """The scheduler refused to enqueue the query (queue full, or the
    session's in-flight cap reached).  Retryable by definition: the
    backlog drains as running queries finish."""

    retryable = True


class OverloadError(AdmissionRejected):
    """The scheduler shed the query: its predicted queue wait already
    exceeds the deadline it would run under, so admitting it could only
    burn a worker slot on an answer nobody will wait for.

    ``retry_after_seconds`` is the scheduler's estimate of when the
    backlog will have drained enough for a resubmission to fit its
    deadline -- a well-behaved client backs off at least that long.
    """

    def __init__(self, message: str, retry_after_seconds: float = 0.0):
        super().__init__(message)
        self.retry_after_seconds = float(retry_after_seconds)


class CircuitBreakerOpen(AdmissionRejected):
    """The session's circuit breaker is open after repeated failures;
    submissions are refused until the cooldown elapses (then one trial
    query half-opens the breaker).  ``retry_after_seconds`` is the
    remaining cooldown."""

    def __init__(self, message: str, retry_after_seconds: float = 0.0):
        super().__init__(message)
        self.retry_after_seconds = float(retry_after_seconds)


class SessionClosed(ServiceError):
    """The session was closed; no further queries can be submitted
    through it."""


class CrossThreadError(ServiceError):
    """A DB-API connection or cursor was used from a thread it is not
    bound to (see ``check_same_thread`` in :mod:`repro.api.dbapi`)."""


class TypeMismatchError(PlanningError):
    """An expression combines values of incompatible SQL types."""


class PercentageQueryError(ReproError):
    """A percentage query violates the paper's usage rules."""


class MaterializedViewError(PlanningError):
    """A materialized-view definition or operation is unsupported."""
