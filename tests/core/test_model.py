"""Unit tests for percentage-query parsing into the model."""

import pytest

from repro.core import model
from repro.core.model import parse_percentage_query
from repro.errors import PercentageQueryError


class TestParsing:
    def test_vpct_query(self):
        query = parse_percentage_query(
            "SELECT state, city, Vpct(salesAmt BY city) FROM sales "
            "GROUP BY state, city")
        assert query.table == "sales"
        assert query.group_by == ("state", "city")
        assert query.dimensions == ("state", "city")
        term = query.terms[0]
        assert term.kind == model.VPCT
        assert term.by_columns == ("city",)

    def test_hpct_query(self):
        query = parse_percentage_query(
            "SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt) "
            "FROM sales GROUP BY store")
        kinds = [t.kind for t in query.terms]
        assert kinds == [model.HPCT, model.VERTICAL]

    def test_hagg_with_default(self):
        query = parse_percentage_query(
            "SELECT tid, max(1 BY deptId DEFAULT 0) FROM t "
            "GROUP BY tid")
        term = query.terms[0]
        assert term.kind == model.HAGG
        assert term.default == 0

    def test_group_by_positions(self):
        query = parse_percentage_query(
            "SELECT a, b, Vpct(m BY b) FROM t GROUP BY 1, 2")
        assert query.group_by == ("a", "b")

    def test_where_passthrough(self):
        query = parse_percentage_query(
            "SELECT a, Vpct(m) FROM t WHERE a > 0 GROUP BY a")
        assert query.where is not None

    def test_multi_table_from_kept_for_materialization(self):
        query = parse_percentage_query(
            "SELECT a, sum(m BY d) FROM t, dim "
            "WHERE t.k = dim.k GROUP BY a")
        assert query.source_select is not None
        assert query.table == ""

    def test_count_star_vertical(self):
        query = parse_percentage_query(
            "SELECT a, count(*), Vpct(m BY a) FROM t GROUP BY a")
        star = query.terms[0]
        assert star.kind == model.VERTICAL
        assert star.argument is None


class TestRejections:
    @pytest.mark.parametrize("sql,fragment", [
        ("INSERT INTO t VALUES (1)", "SELECT"),
        ("SELECT Vpct(m) FROM t GROUP BY a ORDER BY a", "ORDER BY"),
        ("SELECT DISTINCT Vpct(m) FROM t GROUP BY a", "DISTINCT"),
        ("SELECT Vpct(m)", "FROM"),
        ("SELECT a + 1, Vpct(m) FROM t GROUP BY a", "grouping column"),
        ("SELECT a FROM t GROUP BY a", "aggregate term"),
        ("SELECT Vpct(*) FROM t GROUP BY a", "expression"),
        ("SELECT Vpct(DISTINCT m) FROM t GROUP BY a", "DISTINCT"),
        ("SELECT median(m BY a) FROM t", "unknown aggregate"),
        ("SELECT sum(*) FROM t GROUP BY a", "count"),
        ("SELECT a, Vpct(m BY b) FROM t GROUP BY 9", "out of range"),
    ])
    def test_bad_queries(self, sql, fragment):
        with pytest.raises(PercentageQueryError) as err:
            parse_percentage_query(sql)
        assert fragment.lower() in str(err.value).lower()

    def test_labels(self):
        query = parse_percentage_query(
            "SELECT a, Vpct(m BY a) AS pct, sum(x + 1) FROM t "
            "GROUP BY a")
        assert query.terms[0].label() == "pct"
        assert "sum" in query.terms[1].label()
