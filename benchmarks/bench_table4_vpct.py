"""SIGMOD 2004 Table 4: vertical percentage query optimizations.

One benchmark per (query row, strategy column):

* ``best``        -- column (1): Fj from Fk, INSERT, matching indexes;
* ``mism_index``  -- column (2): index(Fj) != index(Fk);
* ``update``      -- column (3): UPDATE Fk in place instead of INSERT;
* ``fj_from_f``   -- column (4): no partial aggregate (Fj from F).

Expected shape (paper): UPDATE blows up when |FV| ~ |F| (the
dept,store row); skipping the partial aggregate costs most when Fk is
much smaller than F; the index mismatch is marginal.
"""

import pytest

from benchmarks.conftest import run_once, skip_unless_full
from repro.bench.harness import run_vpct_experiment
from repro.bench.workloads import SIGMOD_QUERIES
from repro.core import VerticalStrategy

STRATEGIES = {
    "best": VerticalStrategy(),
    "mism_index": VerticalStrategy(matching_indexes=False),
    "update": VerticalStrategy(use_update=True),
    "fj_from_f": VerticalStrategy(fj_from_fk=False),
}

_CASES = [
    pytest.param(spec, name,
                 marks=(skip_unless_full,) if "dept,store" in spec.label
                 else (),
                 id=f"{spec.label}--{name}")
    for spec in SIGMOD_QUERIES
    for name in STRATEGIES
]


@pytest.mark.parametrize("spec,strategy_name", _CASES)
def test_table4(benchmark, sigmod_db, spec, strategy_name):
    strategy = STRATEGIES[strategy_name]

    def run():
        return run_vpct_experiment(sigmod_db, spec, strategy,
                                   name=strategy_name)

    result = run_once(benchmark, run)
    assert result.result_rows > 0
    benchmark.extra_info["query"] = spec.label
    benchmark.extra_info["strategy"] = strategy_name
    benchmark.extra_info["logical_io"] = result.logical_io
