"""SIGMOD 2004 Table 5: horizontal percentage strategies.

One benchmark per (query row, source): ``from_FV`` (transpose the
vertical percentage table) versus ``from_F`` (direct CASE evaluation).

Expected shape (paper): direct-from-F is competitive for one or two
low-selectivity BY columns; the FV route wins as BY columns multiply
or grow selective.
"""

import pytest

from benchmarks.conftest import run_once, skip_unless_full
from repro.bench.harness import run_hpct_experiment
from repro.bench.workloads import SIGMOD_QUERIES
from repro.core import HorizontalStrategy

SOURCES = {"from_FV": HorizontalStrategy(source="FV"),
           "from_F": HorizontalStrategy(source="F")}

_CASES = [
    pytest.param(spec, name,
                 marks=(skip_unless_full,) if "dept,store" in spec.label
                 else (),
                 id=f"{spec.label}--{name}")
    for spec in SIGMOD_QUERIES
    for name in SOURCES
]


@pytest.mark.parametrize("spec,source_name", _CASES)
def test_table5(benchmark, sigmod_db, spec, source_name):
    strategy = SOURCES[source_name]

    def run():
        return run_hpct_experiment(sigmod_db, spec, strategy,
                                   name=source_name)

    result = run_once(benchmark, run)
    assert result.result_rows > 0
    benchmark.extra_info["query"] = spec.label
    benchmark.extra_info["strategy"] = source_name
    benchmark.extra_info["logical_io"] = result.logical_io
