"""Unit tests for the paper's usage rules (Sections 3.1/3.2, DMKD 3.1)."""

import pytest

from repro.core.model import parse_percentage_query
from repro.core.validate import validate
from repro.errors import PercentageQueryError


def check(sql):
    validate(parse_percentage_query(sql))


class TestVpctRules:
    def test_valid_with_by_subset(self):
        check("SELECT s, c, Vpct(m BY c) FROM t GROUP BY s, c")

    def test_valid_without_by(self):
        check("SELECT s, Vpct(m) FROM t GROUP BY s")

    def test_rule1_group_by_required(self):
        with pytest.raises(PercentageQueryError) as err:
            check("SELECT Vpct(m) FROM t")
        assert "rule 1" in str(err.value)

    def test_rule2_by_must_be_subset(self):
        with pytest.raises(PercentageQueryError) as err:
            check("SELECT s, Vpct(m BY other) FROM t GROUP BY s")
        assert "rule 2" in str(err.value)

    def test_by_equal_to_group_by_accepted(self):
        # The 100%-per-row case the paper mentions explicitly.
        check("SELECT s, Vpct(m BY s) FROM t GROUP BY s")

    def test_rule3_combinable_with_other_aggregates(self):
        check("SELECT s, Vpct(m BY s), sum(m), count(*) FROM t "
              "GROUP BY s")

    def test_rule4_multiple_vpct_different_subsets(self):
        check("SELECT s, c, Vpct(m BY c), Vpct(m BY s, c) FROM t "
              "GROUP BY s, c")

    def test_no_default(self):
        with pytest.raises(PercentageQueryError):
            check("SELECT s, Vpct(m BY s DEFAULT 0) FROM t GROUP BY s")

    def test_select_column_must_be_grouped(self):
        with pytest.raises(PercentageQueryError):
            check("SELECT other, Vpct(m BY s) FROM t GROUP BY s")


class TestHpctRules:
    def test_valid(self):
        check("SELECT s, Hpct(m BY d) FROM t GROUP BY s")

    def test_rule1_group_by_optional(self):
        check("SELECT Hpct(m BY d) FROM t")

    def test_rule2_by_required(self):
        with pytest.raises(PercentageQueryError) as err:
            check("SELECT s, Hpct(m) FROM t GROUP BY s")
        assert "rule 2" in str(err.value)

    def test_rule2_disjointness(self):
        with pytest.raises(PercentageQueryError) as err:
            check("SELECT s, Hpct(m BY s, d) FROM t GROUP BY s")
        assert "disjoint" in str(err.value)

    def test_rule3_other_aggregates_allowed(self):
        check("SELECT s, Hpct(m BY d), sum(m), avg(m) FROM t "
              "GROUP BY s")

    def test_rule5_multiple_terms(self):
        check("SELECT s, Hpct(m BY d), Hpct(m2 BY e) FROM t "
              "GROUP BY s")

    def test_no_default_for_hpct(self):
        with pytest.raises(PercentageQueryError):
            check("SELECT s, Hpct(m BY d DEFAULT 0) FROM t GROUP BY s")


class TestHaggRules:
    def test_valid_with_default(self):
        check("SELECT s, sum(m BY d DEFAULT 0) FROM t GROUP BY s")

    def test_count_distinct_by(self):
        check("SELECT s, count(DISTINCT m BY d) FROM t GROUP BY s")

    def test_distinct_only_count(self):
        with pytest.raises(PercentageQueryError):
            check("SELECT s, sum(DISTINCT m BY d) FROM t GROUP BY s")

    def test_disjointness(self):
        with pytest.raises(PercentageQueryError):
            check("SELECT s, sum(m BY s) FROM t GROUP BY s")

    def test_default_without_by_rejected(self):
        with pytest.raises(PercentageQueryError):
            check("SELECT s, sum(m DEFAULT 0) FROM t GROUP BY s")


class TestMixing:
    def test_vpct_and_hpct_rejected_as_future_work(self):
        with pytest.raises(PercentageQueryError) as err:
            check("SELECT s, c, Vpct(m BY c), Hpct(m BY d) FROM t "
                  "GROUP BY s, c")
        assert "future work" in str(err.value)

    def test_hpct_and_hagg_combined_ok(self):
        check("SELECT s, Hpct(m BY d), sum(m BY e), count(*) FROM t "
              "GROUP BY s")
