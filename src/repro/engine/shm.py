"""Shared-memory column transport for the multiprocess backend.

A :class:`SharedColumnBlock` packs a set of named numpy arrays into
**one** ``multiprocessing.shared_memory`` segment (one ``/dev/shm``
entry per dispatch, not per column) and hands out a picklable
:class:`BlockDescriptor` that workers use to re-materialize zero-copy
views.  An :class:`AttachedBlock` is the worker-side handle.

Safety rules (documented in docs/parallelism.md and enforced here):

* **The exporting process owns the segment.**  Workers attach, read,
  and close; only the exporter unlinks.  Export sites must wrap the
  dispatch in ``try/finally: block.close()`` so the segment is
  unlinked on *every* exit path -- normal completion, injected faults,
  worker death, stale epochs.
* **Views before close.**  numpy views pin the underlying buffer;
  both sides drop their views before closing (``AttachedBlock.close``
  does this for workers; the exporter's arrays are copies *into* the
  segment, so the parent holds no views after export).
* **A registry of live segments.**  Every exported segment is tracked
  in a module-level registry until unlinked; :func:`live_segment_names`
  is the leak oracle the tests, the fuzzer and the pytest guard
  assert against, and an ``atexit`` sweep unlinks anything that
  survived to interpreter shutdown (belt and braces on top of the
  resource tracker).

Worker processes are forked, so they share the parent's resource
tracker; the tracker is the crash safety net (it unlinks segments if
the *exporting* process dies hard), while the try/finally discipline
plus the atexit sweep handle every orderly path.
"""

from __future__ import annotations

import atexit
import itertools
import os
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory
from typing import Optional

import numpy as np

#: Exported segment names carry this prefix; the leak guard and the
#: atexit sweep only ever touch names we created.
_SEGMENT_PREFIX = "repro_shm"

_seq = itertools.count()
_live_lock = threading.Lock()
_live: dict[str, shared_memory.SharedMemory] = {}


def _next_segment_name() -> str:
    return f"{_SEGMENT_PREFIX}_{os.getpid()}_{next(_seq)}"


def live_segment_names() -> list[str]:
    """Names of segments this process exported and has not unlinked --
    the leak oracle: empty means no shared memory is outstanding."""
    with _live_lock:
        return sorted(_live)


def force_unlink_all() -> int:
    """Unlink every live segment (test cleanup after a detected leak;
    the atexit sweep).  Returns how many were reclaimed."""
    with _live_lock:
        stranded = list(_live.items())
        _live.clear()
    for _, segment in stranded:
        _close_segment(segment, unlink=True)
    return len(stranded)


def _close_segment(segment: shared_memory.SharedMemory,
                   unlink: bool) -> None:
    try:
        segment.close()
    except (BufferError, OSError):  # pragma: no cover - defensive
        pass
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass


atexit.register(force_unlink_all)


@dataclass(frozen=True)
class _ArraySpec:
    """Where one array lives inside the block's segment."""

    offset: int
    dtype: str
    length: int


@dataclass(frozen=True)
class BlockDescriptor:
    """The picklable recipe for attaching to an exported block."""

    segment: str
    arrays: dict  # name -> _ArraySpec
    nbytes: int


class SharedColumnBlock:
    """Export named numpy arrays into one shared-memory segment.

    Build with :meth:`export`; the parent then dispatches
    ``block.descriptor`` to workers and calls :meth:`close` in a
    ``finally``.  Object-dtype (VARCHAR) arrays are rejected -- the
    eligibility rules in :mod:`repro.engine.process_backend` route
    those to dictionary codes or to local evaluation instead.
    """

    def __init__(self, segment: shared_memory.SharedMemory,
                 descriptor: BlockDescriptor):
        self._segment: Optional[shared_memory.SharedMemory] = segment
        self.descriptor = descriptor

    @classmethod
    def export(cls, arrays: dict) -> "SharedColumnBlock":
        """Copy ``{name: ndarray}`` into a fresh shared segment."""
        specs: dict[str, _ArraySpec] = {}
        offset = 0
        for name, array in arrays.items():
            if array.dtype == object:
                raise TypeError(
                    f"array {name!r} has object dtype; object arrays "
                    f"cannot cross a shared-memory boundary")
            array = np.ascontiguousarray(array)
            specs[name] = _ArraySpec(offset=offset,
                                     dtype=array.dtype.str,
                                     length=len(array))
            offset += array.nbytes
        # A zero-byte SharedMemory raises; one spare byte keeps the
        # empty-block edge case (all arrays empty) alive.
        segment = shared_memory.SharedMemory(
            create=True, size=max(1, offset),
            name=_next_segment_name())
        with _live_lock:
            _live[segment.name] = segment
        for name, array in arrays.items():
            spec = specs[name]
            view = np.ndarray(spec.length, dtype=np.dtype(spec.dtype),
                              buffer=segment.buf, offset=spec.offset)
            view[:] = array
            del view
        descriptor = BlockDescriptor(segment=segment.name,
                                     arrays=specs, nbytes=offset)
        return cls(segment, descriptor)

    @property
    def nbytes(self) -> int:
        return self.descriptor.nbytes

    @property
    def name(self) -> str:
        return self.descriptor.segment

    def close(self) -> None:
        """Close *and unlink* the segment (exporter-side teardown).
        Idempotent; always reachable via try/finally at export sites."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        with _live_lock:
            _live.pop(segment.name, None)
        _close_segment(segment, unlink=True)

    def __enter__(self) -> "SharedColumnBlock":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class AttachedBlock:
    """Worker-side view of an exported block.

    Attach raises ``FileNotFoundError`` when the segment is already
    unlinked -- which is exactly what a stale-epoch task should do:
    fail fast instead of computing against freed data.
    """

    def __init__(self, descriptor: BlockDescriptor):
        self.descriptor = descriptor
        segment = shared_memory.SharedMemory(name=descriptor.segment)
        # CPython < 3.13 registers the segment with the resource
        # tracker on *attach* as well as on create (bpo-39959).  The
        # attach-side registration races the exporter's unlink-time
        # unregister and leaves the tracker believing a long-gone
        # segment leaked.  Only the exporter owns the lifetime, so
        # drop the attach-side registration immediately.
        try:
            resource_tracker.unregister(segment._name, "shared_memory")
        except Exception:  # pragma: no cover - best-effort hygiene
            pass
        self._segment: Optional[shared_memory.SharedMemory] = segment
        self._views: dict[str, np.ndarray] = {}

    def array(self, name: str) -> np.ndarray:
        """A zero-copy view of one exported array (do not mutate)."""
        if self._segment is None:
            raise ValueError("block is closed")
        view = self._views.get(name)
        if view is None:
            spec = self.descriptor.arrays[name]
            view = np.ndarray(spec.length, dtype=np.dtype(spec.dtype),
                              buffer=self._segment.buf,
                              offset=spec.offset)
            self._views[name] = view
        return view

    def close(self) -> None:
        """Drop every view, then close (never unlink -- the exporter
        owns the segment's lifetime).  Idempotent."""
        segment, self._segment = self._segment, None
        if segment is None:
            return
        self._views.clear()
        _close_segment(segment, unlink=False)

    def __enter__(self) -> "AttachedBlock":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
