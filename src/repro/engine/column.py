"""Columnar value storage with an explicit validity mask.

A :class:`ColumnData` couples a dense numpy value array with a boolean
``nulls`` mask of the same length (``True`` marks NULL).  Keeping NULLs
out-of-band lets integer columns stay ``int64`` (no NaN sentinel) and
makes three-valued logic explicit everywhere.

Instances are the unit of data flow inside the engine: table columns,
intermediate expression results and aggregate outputs are all
``ColumnData``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator, Optional, Sequence

import numpy as np

from repro.engine.types import NULL_FILLERS, SQLType, coerce_scalar
from repro.errors import TypeMismatchError


@dataclass
class ColumnData:
    """A typed vector of SQL values with NULL tracking.

    Attributes:
        sql_type: declared SQL type of every non-NULL value.
        values: dense numpy array of ``sql_type.numpy_dtype``; positions
            where ``nulls`` is True hold an arbitrary filler.
        nulls: boolean numpy array, True where the value is NULL.
        cache_token: ``(table, version, column)`` provenance stamped by
            the catalog when this column belongs to a base table; keys
            the dictionary-encoding cache.  None for intermediates.
    """

    sql_type: SQLType
    values: np.ndarray
    nulls: np.ndarray
    cache_token: Optional[tuple] = field(default=None, repr=False,
                                         compare=False)

    def __post_init__(self) -> None:
        if len(self.values) != len(self.nulls):
            raise ValueError("values and nulls must have equal length")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, sql_type: SQLType) -> "ColumnData":
        """A zero-length column of the given type."""
        return cls(sql_type,
                   np.empty(0, dtype=sql_type.numpy_dtype),
                   np.empty(0, dtype=bool))

    @classmethod
    def from_values(cls, sql_type: SQLType,
                    raw: Iterable[Any]) -> "ColumnData":
        """Build a column from an iterable of Python values (None = NULL).

        Values are validated/coerced one by one; this path is meant for
        small literal data (tests, examples, INSERT ... VALUES), not for
        the bulk loader, which constructs arrays directly.
        """
        raw = list(raw)
        nulls = np.fromiter((v is None for v in raw), dtype=bool,
                            count=len(raw))
        filler = NULL_FILLERS[sql_type]
        coerced = [filler if v is None else coerce_scalar(v, sql_type)
                   for v in raw]
        values = np.array(coerced, dtype=sql_type.numpy_dtype)
        return cls(sql_type, values, nulls)

    @classmethod
    def from_arrays(cls, sql_type: SQLType, values: np.ndarray,
                    nulls: np.ndarray | None = None) -> "ColumnData":
        """Wrap pre-built arrays (bulk path; no per-value validation)."""
        values = np.asarray(values, dtype=sql_type.numpy_dtype)
        if nulls is None:
            nulls = np.zeros(len(values), dtype=bool)
        else:
            nulls = np.asarray(nulls, dtype=bool)
        return cls(sql_type, values, nulls)

    @classmethod
    def all_null(cls, sql_type: SQLType, length: int) -> "ColumnData":
        """A column of ``length`` NULLs."""
        if sql_type == SQLType.VARCHAR:
            values = np.full(length, "", dtype=object)
        else:
            # zeros() is markedly faster than full() and the fillers
            # for the numeric/boolean types are all zero.
            values = np.zeros(length, dtype=sql_type.numpy_dtype)
        return cls(sql_type, values, np.ones(length, dtype=bool))

    @classmethod
    def constant(cls, sql_type: SQLType, value: Any,
                 length: int) -> "ColumnData":
        """A column repeating one value (or NULL) ``length`` times."""
        if value is None:
            return cls.all_null(sql_type, length)
        coerced = coerce_scalar(value, sql_type)
        if sql_type != SQLType.VARCHAR and not coerced:
            values = np.zeros(length, dtype=sql_type.numpy_dtype)
        else:
            values = np.full(length, coerced,
                             dtype=sql_type.numpy_dtype)
        return cls(sql_type, values, np.zeros(length, dtype=bool))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, i: int) -> Any:
        """The Python value at row ``i`` (None for NULL)."""
        if self.nulls[i]:
            return None
        value = self.values[i]
        if self.sql_type == SQLType.INTEGER:
            return int(value)
        if self.sql_type == SQLType.REAL:
            return float(value)
        if self.sql_type == SQLType.BOOLEAN:
            return bool(value)
        return value

    def to_pylist(self) -> list[Any]:
        """Materialize as a list of Python values (None for NULL).

        Bulk path: ``ndarray.tolist()`` converts the whole vector to
        native Python values at C speed, then NULL positions are
        patched in from the validity mask.  This sits on the
        result-materialization path of every cursor fetch.
        """
        values = self.values.tolist()
        if self.nulls.any():
            for i in np.flatnonzero(self.nulls):
                values[i] = None
        return values

    def iter_values(self) -> Iterator[Any]:
        for i in range(len(self)):
            yield self[i]

    def null_count(self) -> int:
        return int(self.nulls.sum())

    # ------------------------------------------------------------------
    # Transformations (all return new ColumnData; storage is immutable
    # by convention -- tables replace whole columns on update)
    # ------------------------------------------------------------------
    def take(self, indices: np.ndarray) -> "ColumnData":
        """Gather rows by position."""
        return ColumnData(self.sql_type, self.values[indices],
                          self.nulls[indices])

    def filter(self, mask: np.ndarray) -> "ColumnData":
        """Keep rows where ``mask`` is True."""
        return ColumnData(self.sql_type, self.values[mask],
                          self.nulls[mask])

    def cast(self, target: SQLType) -> "ColumnData":
        """Cast to ``target`` (only numeric widenings are supported)."""
        if target == self.sql_type:
            return self
        if self.sql_type == SQLType.INTEGER and target == SQLType.REAL:
            return ColumnData(target, self.values.astype(np.float64),
                              self.nulls.copy())
        if self.sql_type == SQLType.BOOLEAN and target == SQLType.INTEGER:
            return ColumnData(target, self.values.astype(np.int64),
                              self.nulls.copy())
        if self.sql_type == SQLType.BOOLEAN and target == SQLType.REAL:
            return ColumnData(target, self.values.astype(np.float64),
                              self.nulls.copy())
        raise TypeMismatchError(
            f"cannot cast {self.sql_type} to {target}")

    def copy(self) -> "ColumnData":
        # The copy has identical content, so it keeps the cache token
        # (e.g. the window spool copies partition keys before encoding).
        return ColumnData(self.sql_type, self.values.copy(),
                          self.nulls.copy(), cache_token=self.cache_token)

    @staticmethod
    def concat(parts: Sequence["ColumnData"]) -> "ColumnData":
        """Concatenate columns of the same type."""
        if not parts:
            raise ValueError("concat requires at least one column")
        sql_type = parts[0].sql_type
        for part in parts[1:]:
            if part.sql_type != sql_type:
                raise TypeMismatchError(
                    f"cannot concat {part.sql_type} into {sql_type}")
        values = np.concatenate([p.values for p in parts])
        nulls = np.concatenate([p.nulls for p in parts])
        return ColumnData(sql_type, values, nulls)
