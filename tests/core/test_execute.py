"""Unit tests for the end-to-end runner: dispatch, cleanup, reporting."""

import pytest

from repro.core import (HorizontalAggStrategy, HorizontalStrategy,
                        VerticalStrategy, generate_plan,
                        run_percentage_query)
from repro.core.execute import cleanup_plan, execute_plan
from repro.errors import PercentageQueryError


class TestDispatch:
    def test_vpct_routes_to_vertical(self, sales_db):
        plan = generate_plan(
            sales_db, "SELECT state, Vpct(salesamt) FROM sales "
                      "GROUP BY state")
        assert isinstance(plan.strategy, VerticalStrategy)

    def test_horizontal_routes_to_case(self, store_db):
        plan = generate_plan(
            store_db, "SELECT store, Hpct(salesamt BY dweek) "
                      "FROM sales GROUP BY store")
        assert isinstance(plan.strategy, HorizontalStrategy)

    def test_spj_forced_by_strategy_type(self, employee_db):
        plan = generate_plan(
            employee_db, "SELECT gender, sum(salary BY maritalstatus) "
                         "FROM employee GROUP BY gender",
            HorizontalAggStrategy(source="F"))
        assert isinstance(plan.strategy, HorizontalAggStrategy)

    def test_wrong_strategy_type_rejected(self, sales_db):
        with pytest.raises(PercentageQueryError):
            generate_plan(
                sales_db, "SELECT state, Vpct(salesamt) FROM sales "
                          "GROUP BY state",
                HorizontalStrategy(source="F"))

    def test_plain_query_rejected(self, sales_db):
        with pytest.raises(PercentageQueryError):
            generate_plan(sales_db,
                          "SELECT state, sum(salesamt) FROM sales "
                          "GROUP BY state")

    def test_validation_happens_before_generation(self, sales_db):
        with pytest.raises(PercentageQueryError):
            generate_plan(sales_db,
                          "SELECT Vpct(salesamt) FROM sales")


class TestExecutionReport:
    def test_report_fields(self, sales_db):
        plan = generate_plan(
            sales_db, "SELECT state, Vpct(salesamt) FROM sales "
                      "GROUP BY state")
        report = execute_plan(sales_db, plan)
        assert report.result.n_rows == 2
        assert report.elapsed_seconds > 0
        assert report.statements_run == plan.statement_count()

    def test_discover_steps_not_rerun(self, store_db):
        plan = generate_plan(
            store_db, "SELECT store, Hpct(salesamt BY dweek) "
                      "FROM sales GROUP BY store")
        report = execute_plan(store_db, plan)
        discover = sum(1 for s in plan.steps
                       if s.purpose == "discover")
        assert discover >= 1
        assert report.statements_run == \
            plan.statement_count() - discover

    def test_cleanup_idempotent(self, sales_db):
        plan = generate_plan(
            sales_db, "SELECT state, Vpct(salesamt) FROM sales "
                      "GROUP BY state")
        execute_plan(sales_db, plan)
        cleanup_plan(sales_db, plan)  # already dropped; must not raise

    def test_cleanup_runs_on_failure(self, sales_db):
        plan = generate_plan(
            sales_db, "SELECT state, Vpct(salesamt) FROM sales "
                      "GROUP BY state")
        plan.steps[0].sql = "SELECT * FROM nonexistent"
        from repro.errors import CatalogError
        with pytest.raises(CatalogError):
            execute_plan(sales_db, plan)
        assert not any(t.startswith("_vp")
                       for t in sales_db.table_names())


class TestMaterializedView:
    def test_join_from_clause_materialized(self, db):
        db.load_table("facts", [("k", "int"), ("m", "real")],
                      [(1, 10.0), (1, 30.0), (2, 60.0)])
        db.load_table("dim", [("k", "int"), ("label", "varchar")],
                      [(1, "one"), (2, "two")])
        result = run_percentage_query(
            db,
            "SELECT label, Vpct(m) FROM facts, dim "
            "WHERE facts.k = dim.k GROUP BY label")
        rows = dict(result.to_rows())
        assert rows["one"] == pytest.approx(0.4)
        assert rows["two"] == pytest.approx(0.6)
        # The temp view is dropped with the rest of the plan.
        assert all(not t.startswith("_vp") for t in db.table_names())

    def test_horizontal_on_join(self, db):
        db.load_table("facts", [("k", "int"), ("m", "real")],
                      [(1, 10.0), (2, 30.0)])
        db.load_table("dim", [("k", "int"), ("label", "varchar")],
                      [(1, "one"), (2, "two")])
        result = run_percentage_query(
            db,
            "SELECT sum(m BY label) FROM facts, dim "
            "WHERE facts.k = dim.k")
        row = dict(zip(result.column_names(), result.to_rows()[0]))
        assert row["one"] == 10.0
        assert row["two"] == 30.0
