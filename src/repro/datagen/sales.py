"""The SIGMOD paper's ``sales`` table.

"Table sales had n = 10M with columns transactionId(10M),
itemId(1000), dweek(7), monthNo(12), store(100), city(20), state(5),
dept(100)" (Section 4).  A ``salesAmt`` measure is added as the
aggregated attribute.
"""

from __future__ import annotations

import numpy as np

from repro.api.database import Database
from repro.datagen import distributions as dist
from repro.engine.table import Table

#: The paper's full scale.
PAPER_N = 10_000_000

CARDINALITIES = {"itemid": 1000, "dweek": 7, "monthno": 12,
                 "store": 100, "city": 20, "state": 5, "dept": 100}


def load_sales(db: Database, n_rows: int = 500_000,
               seed: int = 20040618, name: str = "sales",
               replace: bool = True) -> Table:
    """Generate and load the sales table (default 1/20 of paper scale)."""
    rng = np.random.default_rng(seed)
    data = {
        "transactionid": dist.sequence(n_rows),
        "itemid": dist.uniform_dimension(rng, n_rows,
                                         CARDINALITIES["itemid"]),
        "dweek": dist.uniform_dimension(rng, n_rows,
                                        CARDINALITIES["dweek"]),
        "monthno": dist.uniform_dimension(rng, n_rows,
                                          CARDINALITIES["monthno"]),
        "store": dist.uniform_dimension(rng, n_rows,
                                        CARDINALITIES["store"]),
        "city": dist.uniform_dimension(rng, n_rows,
                                       CARDINALITIES["city"]),
        "state": dist.uniform_dimension(rng, n_rows,
                                        CARDINALITIES["state"]),
        "dept": dist.uniform_dimension(rng, n_rows,
                                       CARDINALITIES["dept"]),
        "salesamt": np.round(dist.uniform_measure(rng, n_rows,
                                                  1.0, 500.0), 2),
    }
    if replace:
        db.drop_table(name, if_exists=True)
    return db.load_table(
        name,
        [("transactionid", "int"), ("itemid", "int"), ("dweek", "int"),
         ("monthno", "int"), ("store", "int"), ("city", "int"),
         ("state", "int"), ("dept", "int"), ("salesamt", "real")],
        data, primary_key=["transactionid"])
