"""Unit tests for SQL types, coercion and the promotion lattice."""

import numpy as np
import pytest

from repro.engine.types import (SQLType, arithmetic_result_type,
                                coerce_scalar, common_type, infer_type,
                                type_from_name)
from repro.errors import TypeMismatchError


class TestTypeFromName:
    @pytest.mark.parametrize("name,expected", [
        ("int", SQLType.INTEGER),
        ("INTEGER", SQLType.INTEGER),
        ("BigInt", SQLType.INTEGER),
        ("real", SQLType.REAL),
        ("FLOAT", SQLType.REAL),
        ("decimal", SQLType.REAL),
        ("varchar", SQLType.VARCHAR),
        ("TEXT", SQLType.VARCHAR),
        ("bool", SQLType.BOOLEAN),
    ])
    def test_known_names(self, name, expected):
        assert type_from_name(name) == expected

    def test_unknown_name_raises(self):
        with pytest.raises(TypeMismatchError):
            type_from_name("blob")


class TestInferType:
    def test_bool_before_int(self):
        # bool is a subclass of int in Python; SQL must see BOOLEAN.
        assert infer_type(True) == SQLType.BOOLEAN

    def test_int(self):
        assert infer_type(7) == SQLType.INTEGER

    def test_numpy_int(self):
        assert infer_type(np.int64(7)) == SQLType.INTEGER

    def test_float(self):
        assert infer_type(1.5) == SQLType.REAL

    def test_str(self):
        assert infer_type("x") == SQLType.VARCHAR

    def test_none_raises(self):
        with pytest.raises(TypeMismatchError):
            infer_type(None)


class TestCommonType:
    def test_identical(self):
        assert common_type(SQLType.VARCHAR,
                           SQLType.VARCHAR) == SQLType.VARCHAR

    def test_numeric_promotion(self):
        assert common_type(SQLType.INTEGER,
                           SQLType.REAL) == SQLType.REAL

    def test_incompatible(self):
        with pytest.raises(TypeMismatchError):
            common_type(SQLType.INTEGER, SQLType.VARCHAR)


class TestArithmeticResultType:
    def test_division_always_real(self):
        assert arithmetic_result_type(
            "/", SQLType.INTEGER, SQLType.INTEGER) == SQLType.REAL

    def test_int_addition_stays_int(self):
        assert arithmetic_result_type(
            "+", SQLType.INTEGER, SQLType.INTEGER) == SQLType.INTEGER

    def test_mixed_promotes(self):
        assert arithmetic_result_type(
            "*", SQLType.INTEGER, SQLType.REAL) == SQLType.REAL

    def test_varchar_rejected(self):
        with pytest.raises(TypeMismatchError):
            arithmetic_result_type("+", SQLType.VARCHAR, SQLType.REAL)


class TestCoerceScalar:
    def test_none_passes_through(self):
        assert coerce_scalar(None, SQLType.INTEGER) is None

    def test_integral_float_to_int(self):
        assert coerce_scalar(3.0, SQLType.INTEGER) == 3

    def test_fractional_float_to_int_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_scalar(3.5, SQLType.INTEGER)

    def test_int_to_real(self):
        assert coerce_scalar(3, SQLType.REAL) == 3.0

    def test_str_to_real_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_scalar("3", SQLType.REAL)

    def test_str_to_varchar(self):
        assert coerce_scalar("abc", SQLType.VARCHAR) == "abc"

    def test_int_to_varchar_raises(self):
        with pytest.raises(TypeMismatchError):
            coerce_scalar(3, SQLType.VARCHAR)

    def test_bool(self):
        assert coerce_scalar(True, SQLType.BOOLEAN) is True
        assert coerce_scalar(True, SQLType.INTEGER) == 1
