"""Generated evaluation plans: ordered standard-SQL statement lists.

A :class:`GeneratedPlan` is what the code generator hands back -- the
Python equivalent of the SQL script the paper's Java program sent to
Teradata.  Plans are inspectable (``plan.sql_script()``) and replayable
against any :class:`~repro.api.database.Database`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional


#: Step purposes, used by tests and by the harness to attribute time.
MATERIALIZE = "materialize-view"
CREATE_TEMP = "create-temp"
AGGREGATE_FK = "aggregate-fk"
AGGREGATE_FJ = "aggregate-fj"
INDEX = "index"
DIVIDE = "divide"
UPDATE_DIVIDE = "update-divide"
DISCOVER = "discover"
TRANSPOSE = "transpose"
SPJ_PROJECT = "spj-project"
ASSEMBLE = "assemble"
MISSING_ROWS = "missing-rows"
RESULT = "result"


@dataclass
class GeneratedStep:
    """One statement of a plan."""

    sql: str
    purpose: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"-- {self.purpose}\n{self.sql};"


@dataclass
class GeneratedPlan:
    """An executable plan for one percentage query.

    Attributes:
        steps: statements to run, in order.
        result_table: temp table holding the final result, or None
            when ``result_select`` returns it directly.
        result_select: final SELECT text returning the result rows
            (always set; reads ``result_table`` when one exists).
        temp_tables: every temporary table the plan creates, in
            creation order (dropped by the runner unless kept).
        description: human-readable strategy summary.
        strategy: the strategy object that produced the plan.
        discovered: per-term discovered BY-combination lists (set by
            horizontal generators; empty for vertical plans).
    """

    steps: list[GeneratedStep] = field(default_factory=list)
    result_table: Optional[str] = None
    result_select: str = ""
    temp_tables: list[str] = field(default_factory=list)
    description: str = ""
    strategy: Any = None
    discovered: dict[int, list[tuple]] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def add(self, sql: str, purpose: str) -> None:
        self.steps.append(GeneratedStep(sql, purpose))

    def extend(self, other: "GeneratedPlan") -> None:
        """Splice another plan's steps and temp tables in front of this
        plan's own bookkeeping (used when the FV step is itself a
        generated vertical plan)."""
        self.steps.extend(other.steps)
        self.temp_tables.extend(other.temp_tables)

    def sql_script(self) -> str:
        """The full plan as annotated SQL text."""
        lines = [str(step) for step in self.steps]
        if self.result_select:
            lines.append(f"-- {RESULT}\n{self.result_select};")
        return "\n".join(lines)

    def statement_count(self) -> int:
        return len(self.steps) + (1 if self.result_select else 0)


_counter = itertools.count(1)


def fresh_prefix(tag: str) -> str:
    """A unique temp-table prefix (``_vp3``, ``_hp7``, ...)."""
    return f"_{tag}{next(_counter)}"
