"""Negative parser tests: malformed SQL must raise SQLSyntaxError with
positions, never crash or mis-parse."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.parser import parse_expression, parse_statement

BAD_STATEMENTS = [
    "SELECT",
    "SELECT FROM t",
    "SELECT a FROM",
    "SELECT a FROM t WHERE",
    "SELECT a FROM t GROUP BY",
    "SELECT a FROM t ORDER BY",
    "SELECT a FROM t LIMIT x",
    "SELECT a FROM t LIMIT 1.5",
    "SELECT a, FROM t",
    "SELECT a FROM t JOIN u",                 # missing ON
    "SELECT a FROM t LEFT JOIN u ON",
    "SELECT a FROM (SELECT a FROM t)",        # derived needs alias
    "CREATE t (a INT)",
    "CREATE TABLE t",
    "CREATE TABLE t (a)",
    "CREATE TABLE t (a INT",
    "CREATE INDEX ix ON t",
    "CREATE VIEW v SELECT 1",
    "DROP",
    "DROP SOMETHING t",
    "INSERT t VALUES (1)",
    "INSERT INTO t VALUES 1",
    "INSERT INTO t (a VALUES (1)",
    "UPDATE t a = 1",
    "UPDATE t SET",
    "UPDATE t SET a",
    "DELETE t",
    "SELECT CASE a THEN 1 END FROM t",
    "SELECT CASE WHEN a END FROM t",
    "SELECT CAST(a) FROM t",
    "SELECT CAST(a AS) FROM t",
    "SELECT sum( FROM t",
    "SELECT sum(a BY) FROM t",
    "SELECT sum(a) OVER FROM t",
    "SELECT a FROM t; garbage",
    "EXPLAIN",
]


@pytest.mark.parametrize("sql", BAD_STATEMENTS)
def test_bad_statement_raises_syntax_error(sql):
    with pytest.raises(SQLSyntaxError):
        parse_statement(sql)


BAD_EXPRESSIONS = [
    "",
    "1 +",
    "(1",
    "a IN",
    "a IN ()",
    "a BETWEEN 1",
    "a IS",
    "a NOT",
    "NOT",
    "a ==" ,
    "CASE END",
]


@pytest.mark.parametrize("text", BAD_EXPRESSIONS)
def test_bad_expression_raises_syntax_error(text):
    with pytest.raises(SQLSyntaxError):
        parse_expression(text)


def test_error_carries_position():
    with pytest.raises(SQLSyntaxError) as err:
        parse_statement("SELECT a\nFROM t WHERE ???")
    assert err.value.line == 2


def test_nested_errors_do_not_leak_other_exceptions():
    # A once-common failure mode: deep nesting hitting Python-level
    # errors instead of clean syntax errors.
    deep = "(" * 50 + "1" + ")" * 49
    with pytest.raises(SQLSyntaxError):
        parse_statement(f"SELECT {deep}")
