"""Deterministic random generation of fuzz cases.

A :class:`FuzzCase` bundles a small schema, a dataset and one extended
query.  Everything derives from ``random.Random(f"{seed}:{index}")``,
so a (seed, index) pair identifies a case forever -- the property the
CLI's ``--seed`` flag and the checked-in corpus rely on.

The data generator is deliberately adversarial for percentage
arithmetic: heavy NULL rates on both dimensions and measures, zeros
and sign-cancelling pairs (so coarse denominators hit exactly zero),
duplicate rows, empty tables, and single-row tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Sequence

#: families of generated queries; each maps to a strategy set in
#: :mod:`repro.fuzz.runner`.
FAMILIES = ("vpct", "hpct", "hagg", "plain", "cube")

#: aggregate functions safe on both engines (sqlite has no var/stdev).
PLAIN_FUNCS = ("sum", "count", "avg", "min", "max")
HAGG_FUNCS = ("sum", "count", "avg", "min", "max")

_DIM_POOL = (("d1", "varchar"), ("d2", "int"), ("d3", "varchar"))
_MEASURE_POOL = (("m1", "real"), ("m2", "int"))

_VARCHAR_VALUES = ("a", "b", "c")
_INT_DIM_VALUES = (0, 1, 2)


@dataclass(frozen=True)
class TermSpec:
    """One aggregate item of a generated select list."""

    kind: str                      # vpct | hpct | hagg | plain
    func: str                      # vpct/hpct or sum/count/avg/min/max
    argument: str                  # column name, or "*" (count only)
    by: tuple[str, ...] = ()
    default: Optional[Any] = None  # literal for ``DEFAULT`` (hagg only)

    def sql(self) -> str:
        if self.kind == "grouping":
            # grouping() takes the dim list in ``by`` (``argument`` is
            # unused); it tags each output row with its set's bitmask.
            return f"grouping({', '.join(self.by)})"
        inner = self.argument
        if self.by:
            inner += " BY " + ", ".join(self.by)
        if self.default is not None:
            inner += f" DEFAULT {self.default}"
        name = {"vpct": "Vpct", "hpct": "Hpct"}.get(self.kind, self.func)
        return f"{name}({inner})"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "func": self.func,
                "argument": self.argument, "by": list(self.by),
                "default": self.default}

    @staticmethod
    def from_dict(data: dict) -> "TermSpec":
        return TermSpec(kind=data["kind"], func=data["func"],
                        argument=data["argument"],
                        by=tuple(data.get("by", ())),
                        default=data.get("default"))


@dataclass(frozen=True)
class FuzzCase:
    """A self-contained differential-testing input."""

    seed: int
    index: int
    columns: tuple[tuple[str, str], ...]   # (name, type name)
    rows: tuple[tuple[Any, ...], ...]
    group_by: tuple[str, ...]
    terms: tuple[TermSpec, ...]
    family: str
    note: str = ""
    #: cube family only: the full GROUP BY clause text (e.g.
    #: ``CUBE(d1, d2)``); ``group_by`` then lists the union dims the
    #: select list projects.
    group_by_clause: str = ""

    @property
    def table(self) -> str:
        return "f"

    def column_names(self) -> list[str]:
        return [name for name, _ in self.columns]

    def query_sql(self) -> str:
        items = list(self.group_by)
        items += [t.sql() for t in self.terms]
        sql = f"SELECT {', '.join(items)} FROM {self.table}"
        if self.group_by_clause:
            sql += " GROUP BY " + self.group_by_clause
        elif self.group_by:
            sql += " GROUP BY " + ", ".join(self.group_by)
        return sql

    def to_dict(self) -> dict:
        return {"seed": self.seed, "index": self.index,
                "columns": [list(c) for c in self.columns],
                "rows": [list(r) for r in self.rows],
                "group_by": list(self.group_by),
                "terms": [t.to_dict() for t in self.terms],
                "family": self.family, "note": self.note,
                "group_by_clause": self.group_by_clause}

    @staticmethod
    def from_dict(data: dict) -> "FuzzCase":
        return FuzzCase(
            seed=data.get("seed", 0), index=data.get("index", 0),
            columns=tuple((c[0], c[1]) for c in data["columns"]),
            rows=tuple(tuple(r) for r in data["rows"]),
            group_by=tuple(data["group_by"]),
            terms=tuple(TermSpec.from_dict(t) for t in data["terms"]),
            family=data["family"], note=data.get("note", ""),
            group_by_clause=data.get("group_by_clause", ""))

    # Convenience for the reducer --------------------------------------
    def with_rows(self, rows: Sequence[Sequence[Any]]) -> "FuzzCase":
        return replace(self, rows=tuple(tuple(r) for r in rows))

    def referenced_columns(self) -> list[str]:
        """Columns the query actually touches, in schema order."""
        needed = set(self.group_by)
        for term in self.terms:
            needed.update(term.by)
            if term.argument != "*":
                needed.add(term.argument)
        return [n for n in self.column_names() if n in needed]


class CaseGenerator:
    """Seeded stream of :class:`FuzzCase` values.

    ``families`` narrows the query-family mix (e.g. a nightly
    cube-only sweep); the default covers every family.  Narrowing
    changes which case each index produces, so corpus repros always
    record the full case, never just (seed, index).
    """

    def __init__(self, seed: int = 0,
                 families: Sequence[str] = FAMILIES):
        unknown = [f for f in families if f not in FAMILIES]
        if unknown:
            raise ValueError(f"unknown family(ies) "
                             f"{', '.join(unknown)}; known: "
                             f"{', '.join(FAMILIES)}")
        if not families:
            raise ValueError("at least one family is required")
        self.seed = seed
        self.families = tuple(families)

    def case(self, index: int) -> FuzzCase:
        rng = random.Random(f"{self.seed}:{index}")
        family = rng.choice(self.families)
        dims = sorted(rng.sample(_DIM_POOL,
                                 rng.randint(1 if family != "plain" else 0,
                                             len(_DIM_POOL))))
        measures = sorted(rng.sample(_MEASURE_POOL,
                                     rng.randint(1, len(_MEASURE_POOL))))
        if family in ("hpct", "hagg", "cube") and not dims:
            dims = [rng.choice(_DIM_POOL)]
        columns = tuple(dims + measures)
        rows = self._rows(rng, columns)
        if family == "cube":
            group_by, terms, clause = self._cube_query(
                rng, [d for d, _ in dims], [m for m, _ in measures])
            return FuzzCase(seed=self.seed, index=index,
                            columns=columns, rows=rows,
                            group_by=group_by, terms=terms,
                            family=family, group_by_clause=clause)
        group_by, terms = self._query(rng, family,
                                      [d for d, _ in dims],
                                      [m for m, _ in measures])
        return FuzzCase(seed=self.seed, index=index, columns=columns,
                        rows=rows, group_by=group_by, terms=terms,
                        family=family)

    def cases(self, budget: int):
        for index in range(budget):
            yield self.case(index)

    # ------------------------------------------------------------------
    def _rows(self, rng: random.Random,
              columns: Sequence[tuple[str, str]]) -> tuple:
        n_rows = rng.choice((0, 1, rng.randint(2, 8),
                             rng.randint(9, 30)))
        null_prob = {name: rng.choice((0.0, 0.15, 0.5))
                     for name, _ in columns}
        rows = [tuple(self._value(rng, type_name, null_prob[name])
                      for name, type_name in columns)
                for _ in range(n_rows)]
        # Sign-cancelling pair: same dimensions, measures v and -v, so a
        # coarse-level sum over that group is exactly zero.
        if rows and rng.random() < 0.35:
            base = list(rng.choice(rows))
            mirror = list(base)
            for i, (_, type_name) in enumerate(columns):
                if type_name in ("real", "int"):
                    v = rng.choice((1, 2.5, 4))
                    if type_name == "int":
                        v = int(v)
                    base[i], mirror[i] = v, -v
            rows += [tuple(base), tuple(mirror)]
        # All-NULL measure clone: duplicate a row with its measures
        # NULLed out, feeding the all-NULL-denominator path.
        if rows and rng.random() < 0.35:
            victim = list(rng.choice(rows))
            for i, (_, type_name) in enumerate(columns):
                if type_name in ("real", "int"):
                    victim[i] = None
            rows.append(tuple(victim))
        if rows and rng.random() < 0.2:       # exact duplicate row
            rows.append(rng.choice(rows))
        return tuple(rows)

    def _value(self, rng: random.Random, type_name: str,
               null_prob: float):
        if rng.random() < null_prob:
            return None
        if type_name == "varchar":
            return rng.choice(_VARCHAR_VALUES)
        if type_name == "int":
            return rng.choice(_INT_DIM_VALUES + (0, 5, -3))
        # real measure: zeros and negatives are over-weighted so that
        # denominators hit 0 and percentages leave [0, 1].
        return rng.choice((0.0, 0.0, 1.0, 2.5, -1.5, 10.0, 0.25))

    # ------------------------------------------------------------------
    def _query(self, rng: random.Random, family: str,
               dims: list[str], measures: list[str]):
        if family == "vpct":
            # Favor >= 2 grouping columns with a proper non-empty BY
            # subset: that is the only shape where the coarse
            # denominator level differs from both the fine level and
            # the grand total, so denominator-level bugs only show
            # there.
            low = 2 if len(dims) >= 2 and rng.random() < 0.7 else 1
            group_by = tuple(sorted(rng.sample(
                dims, rng.randint(low, len(dims)))))
            terms = []
            for _ in range(rng.randint(1, 2)):
                if len(group_by) >= 2 and rng.random() < 0.7:
                    width = rng.randint(1, len(group_by) - 1)
                else:
                    width = rng.randint(0, len(group_by))
                by = tuple(sorted(rng.sample(group_by, width)))
                terms.append(TermSpec("vpct", "vpct",
                                      rng.choice(measures), by))
            if rng.random() < 0.4:
                terms.append(self._plain_term(rng, measures))
            return group_by, tuple(terms)

        if family in ("hpct", "hagg"):
            # BY columns must be disjoint from GROUP BY; keep the BY
            # width at 1-2 so the pivoted table stays small.
            by_pool = list(dims)
            by = tuple(sorted(rng.sample(
                by_pool, rng.randint(1, min(2, len(by_pool))))))
            remaining = [d for d in dims if d not in by]
            group_by = tuple(sorted(rng.sample(
                remaining, rng.randint(0, len(remaining)))))
            terms = []
            for _ in range(rng.randint(1, 2)):
                if family == "hpct":
                    terms.append(TermSpec("hpct", "hpct",
                                          rng.choice(measures), by))
                else:
                    func = rng.choice(HAGG_FUNCS)
                    default = rng.choice((None, None, 0, -1))
                    terms.append(TermSpec("hagg", func,
                                          rng.choice(measures), by,
                                          default=default))
            if rng.random() < 0.4:
                terms.append(self._plain_term(rng, measures))
            return group_by, tuple(terms)

        group_by = tuple(sorted(rng.sample(
            dims, rng.randint(0, len(dims)))))
        terms = tuple(self._plain_term(rng, measures)
                      for _ in range(rng.randint(1, 3)))
        return group_by, terms

    def _cube_query(self, rng: random.Random, dims: list[str],
                    measures: list[str]
                    ) -> tuple[tuple[str, ...], tuple[TermSpec, ...],
                               str]:
        """A CUBE/ROLLUP/GROUPING SETS query over the dim columns.

        The select list projects every union dim (testing the NULL
        placeholders), plain aggregates, and -- often -- a
        ``grouping()`` bitmask term, which is also what lets the
        comparator tell a placeholder NULL from a genuine NULL key.
        """
        shape = rng.choice(("cube", "rollup", "gsets"))
        construct_dims = sorted(rng.sample(
            dims, rng.randint(1, len(dims))))
        plain_dims = [d for d in dims if d not in construct_dims]
        leading = sorted(rng.sample(
            plain_dims, rng.randint(0, min(1, len(plain_dims)))))

        if shape == "cube":
            clause = f"CUBE({', '.join(construct_dims)})"
        elif shape == "rollup":
            clause = f"ROLLUP({', '.join(construct_dims)})"
        else:
            subsets: list[tuple[str, ...]] = []
            pool = [tuple(sorted(rng.sample(
                        construct_dims,
                        rng.randint(0, len(construct_dims)))))
                    for _ in range(rng.randint(1, 4))]
            for subset in pool:
                if subset not in subsets:
                    subsets.append(subset)
            rendered = ", ".join("(" + ", ".join(s) + ")"
                                 for s in subsets)
            clause = f"GROUPING SETS ({rendered})"
        if leading:
            clause = ", ".join(leading) + ", " + clause

        union_dims = tuple(leading + construct_dims)
        terms = [self._plain_term(rng, measures)
                 for _ in range(rng.randint(1, 3))]
        if rng.random() < 0.6:
            args = tuple(sorted(rng.sample(
                list(union_dims), rng.randint(1, len(union_dims)))))
            terms.append(TermSpec("grouping", "grouping", "*",
                                  by=args))
        return union_dims, tuple(terms), clause

    def _plain_term(self, rng: random.Random,
                    measures: list[str]) -> TermSpec:
        func = rng.choice(PLAIN_FUNCS)
        if func == "count" and rng.random() < 0.5:
            return TermSpec("plain", "count", "*")
        return TermSpec("plain", func, rng.choice(measures))
