"""Unit tests for ColumnData storage."""

import numpy as np
import pytest

from repro.engine.column import ColumnData
from repro.engine.types import SQLType
from repro.errors import TypeMismatchError


class TestConstruction:
    def test_from_values_with_nulls(self):
        col = ColumnData.from_values(SQLType.INTEGER, [1, None, 3])
        assert col.to_pylist() == [1, None, 3]
        assert col.null_count() == 1

    def test_from_values_coerces(self):
        col = ColumnData.from_values(SQLType.REAL, [1, 2.5])
        assert col.to_pylist() == [1.0, 2.5]

    def test_from_values_bad_type_raises(self):
        with pytest.raises(TypeMismatchError):
            ColumnData.from_values(SQLType.INTEGER, ["x"])

    def test_from_arrays_bulk(self):
        col = ColumnData.from_arrays(SQLType.INTEGER,
                                     np.arange(5, dtype=np.int64))
        assert len(col) == 5
        assert col.null_count() == 0

    def test_all_null(self):
        col = ColumnData.all_null(SQLType.VARCHAR, 3)
        assert col.to_pylist() == [None, None, None]

    def test_constant(self):
        col = ColumnData.constant(SQLType.REAL, 2.5, 4)
        assert col.to_pylist() == [2.5] * 4

    def test_constant_zero_fast_path(self):
        col = ColumnData.constant(SQLType.INTEGER, 0, 3)
        assert col.to_pylist() == [0, 0, 0]

    def test_constant_none_is_all_null(self):
        col = ColumnData.constant(SQLType.REAL, None, 2)
        assert col.to_pylist() == [None, None]

    def test_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            ColumnData(SQLType.INTEGER, np.zeros(2, dtype=np.int64),
                       np.zeros(3, dtype=bool))


class TestAccess:
    def test_getitem_python_types(self):
        col = ColumnData.from_values(SQLType.INTEGER, [5])
        assert isinstance(col[0], int)
        col = ColumnData.from_values(SQLType.REAL, [5.0])
        assert isinstance(col[0], float)
        col = ColumnData.from_values(SQLType.BOOLEAN, [True])
        assert col[0] is True

    def test_null_positions_read_as_none(self):
        col = ColumnData.from_values(SQLType.VARCHAR, ["a", None])
        assert col[1] is None

    def test_iter_values(self):
        col = ColumnData.from_values(SQLType.INTEGER, [1, None])
        assert list(col.iter_values()) == [1, None]


class TestTransformations:
    def test_take(self):
        col = ColumnData.from_values(SQLType.INTEGER, [10, 20, 30])
        taken = col.take(np.array([2, 0]))
        assert taken.to_pylist() == [30, 10]

    def test_filter(self):
        col = ColumnData.from_values(SQLType.INTEGER, [1, 2, 3])
        kept = col.filter(np.array([True, False, True]))
        assert kept.to_pylist() == [1, 3]

    def test_cast_int_to_real(self):
        col = ColumnData.from_values(SQLType.INTEGER, [1, None])
        cast = col.cast(SQLType.REAL)
        assert cast.sql_type == SQLType.REAL
        assert cast.to_pylist() == [1.0, None]

    def test_cast_identity(self):
        col = ColumnData.from_values(SQLType.REAL, [1.0])
        assert col.cast(SQLType.REAL) is col

    def test_cast_varchar_to_int_raises(self):
        col = ColumnData.from_values(SQLType.VARCHAR, ["a"])
        with pytest.raises(TypeMismatchError):
            col.cast(SQLType.INTEGER)

    def test_concat(self):
        a = ColumnData.from_values(SQLType.INTEGER, [1])
        b = ColumnData.from_values(SQLType.INTEGER, [None, 3])
        merged = ColumnData.concat([a, b])
        assert merged.to_pylist() == [1, None, 3]

    def test_concat_type_mismatch_raises(self):
        a = ColumnData.from_values(SQLType.INTEGER, [1])
        b = ColumnData.from_values(SQLType.REAL, [1.0])
        with pytest.raises(TypeMismatchError):
            ColumnData.concat([a, b])

    def test_copy_is_independent(self):
        col = ColumnData.from_values(SQLType.INTEGER, [1, 2])
        cloned = col.copy()
        cloned.values[0] = 99
        assert col[0] == 1

    def test_copy_preserves_cache_token(self):
        col = ColumnData.from_values(SQLType.INTEGER, [1, 2])
        col.cache_token = ("t", 7, "a")
        assert col.copy().cache_token == ("t", 7, "a")

    def test_to_pylist_matches_getitem(self):
        # The bulk tolist() + null-mask patch must agree element-wise
        # with scalar access across types and NULL placements.
        cases = [
            ColumnData.from_values(SQLType.INTEGER, [1, None, 3, None]),
            ColumnData.from_values(SQLType.REAL, [None, 2.5, -1.0]),
            ColumnData.from_values(SQLType.VARCHAR,
                                   ["a", None, "", "z"]),
            ColumnData.from_values(SQLType.BOOLEAN,
                                   [True, None, False]),
        ]
        for col in cases:
            assert col.to_pylist() == [col[i] for i in range(len(col))]
            assert all(value is None or not hasattr(value, "dtype")
                       for value in col.to_pylist())
