"""Data-set preparation for data mining (the companion paper's
motivating use case).

Horizontal aggregations turn the normalized transactionLine table into
a tabular point-dimension data set -- one store per row, day-of-week
sales as columns -- then a tiny k-means (pure numpy) clusters the
stores by weekly sales profile, exactly the pipeline DMKD Section 2.1
motivates ("Stores can be clustered based on sales for each day of the
week").  The second part reproduces the binary-coding trick
(``sum(1 BY ... DEFAULT 0)``).

Run:  python examples/data_mining_prep.py
"""

import numpy as np

from repro import Database
from repro.core import run_percentage_query
from repro.datagen import load_transaction_line


def kmeans(points: np.ndarray, k: int, iterations: int = 25,
           seed: int = 7) -> np.ndarray:
    """A minimal k-means, enough to demonstrate the pipeline."""
    rng = np.random.default_rng(seed)
    centers = points[rng.choice(len(points), size=k, replace=False)]
    assignment = np.zeros(len(points), dtype=np.int64)
    for _ in range(iterations):
        distances = ((points[:, None, :] - centers[None, :, :]) ** 2) \
            .sum(axis=2)
        assignment = distances.argmin(axis=1)
        for j in range(k):
            members = points[assignment == j]
            if len(members):
                centers[j] = members.mean(axis=0)
    return assignment


def main() -> None:
    db = Database()
    load_transaction_line(db, 50_000)

    # ------------------------------------------------------------------
    # 1. One observation per store, one feature per day of week.
    # ------------------------------------------------------------------
    query = ("SELECT storeid, Hpct(salesamt BY dayofweekno), "
             "sum(salesamt) FROM transactionline GROUP BY storeid")
    print(f"Building the data set:\n  {query}\n")
    dataset = run_percentage_query(db, query)
    names = dataset.column_names()
    print(f"Tabular data set: {dataset.n_rows} observations x "
          f"{len(names)} columns")
    print(f"Columns: {names}\n")

    day_columns = [n for n in names
                   if n not in ("storeid", "sum_salesamt")]
    matrix = np.array([[row[names.index(c)] for c in day_columns]
                       for row in dataset.to_rows()])
    stores = [row[0] for row in dataset.to_rows()]

    clusters = kmeans(matrix, k=3)
    print("k-means(3) on weekly sales profiles:")
    for j in range(3):
        members = [str(s) for s, c in zip(stores, clusters) if c == j]
        print(f"  cluster {j}: stores {', '.join(members[:10])}"
              + (" ..." if len(members) > 10 else ""))

    # ------------------------------------------------------------------
    # 2. Binary coding of categorical attributes (DMKD Table 2 style):
    #    one flag column per (region, year) combination.
    # ------------------------------------------------------------------
    coding = ("SELECT transactionid, "
              "max(1 BY regionid, yearno DEFAULT 0) "
              "FROM transactionline WHERE transactionid <= 5 "
              "GROUP BY transactionid")
    print(f"\nBinary coding:\n  {coding}\n")
    coded = run_percentage_query(db, coding)
    header = coded.column_names()
    print("  " + "  ".join(f"{h:>8s}" for h in header))
    for row in coded.to_rows():
        print("  " + "  ".join(f"{str(v):>8s}" for v in row))


if __name__ == "__main__":
    main()
