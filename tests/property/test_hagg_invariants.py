"""Property-based invariants of horizontal aggregations (Hagg) and the
DEFAULT clause:

* every horizontal ``sum``/``min``/``max``/``avg`` cell equals the
  plain vertical aggregate of the matching (group, pivot) slice;
* the horizontal cells of a row recombine into the plain group
  aggregate (sum of sums, min of mins, max of maxes);
* ``DEFAULT v`` fills exactly the combinations with no contributing
  non-NULL measure, and leaves every real cell untouched;
* the CASE and SPJ evaluation paths agree cell by cell.
"""

import math
import re

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.core import (HorizontalAggStrategy, HorizontalStrategy,
                        run_percentage_query)

#: Strictly positive measures: no group or cell can be all-NULL, so a
#: NULL horizontal cell means exactly "this combination is absent".
POSITIVE_ROWS = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 3),
              st.integers(1, 50)),
    min_size=1, max_size=25)

MIXED_ROWS = st.lists(
    st.tuples(st.integers(0, 2), st.integers(0, 3),
              st.one_of(st.none(), st.integers(-20, 20))),
    min_size=1, max_size=25)


def load(rows):
    db = Database()
    db.execute("CREATE TABLE f (g INT, d INT, m REAL)")
    values = ", ".join(f"({g}, {d}, {'NULL' if m is None else m})"
                       for g, d, m in rows)
    db.execute(f"INSERT INTO f VALUES {values}")
    return db


def slices(rows):
    """(g, d) -> list of non-NULL measures."""
    out = {}
    for g, d, m in rows:
        if m is not None:
            out.setdefault((g, d), []).append(float(m))
    return out


def cells(result):
    """(g, pivot column name) -> cell value."""
    names = result.column_names()
    return {(row[0], name): value
            for row in result.to_rows()
            for name, value in zip(names, row) if name != "g"}


@pytest.mark.parametrize("func,combine", [
    ("sum", sum), ("min", min), ("max", max),
    ("avg", lambda vs: sum(vs) / len(vs)),
])
@given(MIXED_ROWS)
@settings(max_examples=30, deadline=None)
def test_cells_match_slice_aggregates(func, combine, rows):
    db = load(rows)
    result = run_percentage_query(
        db, f"SELECT g, {func}(m BY d) FROM f GROUP BY g")
    expected = slices(rows)
    for (g, name), value in cells(result).items():
        # Single-term naming is "c<value>"; multi-term is
        # "<func>_m_<value>".  The pivot value is the trailing digits.
        d = int(re.search(r"(\d+)$", name).group(1))
        measures = expected.get((g, d))
        if measures is None:
            assert value is None
        else:
            assert math.isclose(value, combine(measures))


@given(MIXED_ROWS)
@settings(max_examples=30, deadline=None)
def test_row_cells_recombine_to_group_aggregate(rows):
    """sum of a row's horizontal sums == the group's plain sum; same
    for min-of-mins and max-of-maxes."""
    db = load(rows)
    result = run_percentage_query(
        db, "SELECT g, sum(m BY d), min(m BY d), max(m BY d), "
            "sum(m), min(m), max(m) FROM f GROUP BY g")
    names = result.column_names()
    for row in result.to_rows():
        record = dict(zip(names, row))
        for func in ("sum", "min", "max"):
            parts = [v for k, v in record.items()
                     if k.startswith(f"{func}_m_") and v is not None]
            combine = {"sum": sum, "min": min, "max": max}[func]
            plain = record[f"{func}_m"]
            if parts:
                assert math.isclose(combine(parts), plain)
            else:
                assert plain is None


@given(POSITIVE_ROWS)
@settings(max_examples=30, deadline=None)
def test_default_fills_exactly_the_missing_combinations(rows):
    db = load(rows)
    plain = run_percentage_query(
        db, "SELECT g, sum(m BY d) FROM f GROUP BY g")
    filled = run_percentage_query(
        db, "SELECT g, sum(m BY d DEFAULT -1) FROM f GROUP BY g")
    bare, defaulted = cells(plain), cells(filled)
    assert bare.keys() == defaulted.keys()
    for key, value in bare.items():
        if value is None:
            assert defaulted[key] == -1
        else:
            assert math.isclose(defaulted[key], value)


@given(MIXED_ROWS)
@settings(max_examples=30, deadline=None)
def test_case_and_spj_paths_agree(rows):
    db = load(rows)
    sql = "SELECT g, avg(m BY d), count(m BY d) FROM f GROUP BY g"
    baseline = None
    for strategy in (HorizontalStrategy(source="F"),
                     HorizontalStrategy(source="FV"),
                     HorizontalAggStrategy(source="F"),
                     HorizontalAggStrategy(source="FV")):
        rows_out = run_percentage_query(db, sql, strategy).to_rows()
        if baseline is None:
            baseline = rows_out
        else:
            assert len(rows_out) == len(baseline)
            for a, b in zip(rows_out, baseline):
                assert a == pytest.approx(b, nan_ok=True)
