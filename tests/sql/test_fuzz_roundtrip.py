"""Round-trip tests over fuzzer-generated queries.

The case generator emits the full extended-SQL surface (Vpct/Hpct BY
lists, DEFAULT literals, mixed plain aggregates, ``count(*)``), so
driving the parser/formatter pair from it covers shapes the
hand-written grammar tests miss.  Equivalence is checked at the AST
level: parse(format(parse(q))) == parse(q).
"""

import pytest

from repro.fuzz.dialect import to_sqlite
from repro.fuzz.generator import CaseGenerator
from repro.sql.formatter import format_statement
from repro.sql.parser import parse_statement

CASES = [CaseGenerator(seed=7).case(i) for i in range(80)]


@pytest.mark.parametrize("case", CASES,
                         ids=[f"case{c.index}-{c.family}" for c in CASES])
def test_generated_query_roundtrips(case):
    sql = case.query_sql()
    tree = parse_statement(sql)
    rendered = format_statement(tree)
    assert parse_statement(rendered) == tree


@pytest.mark.parametrize("case", CASES[:40],
                         ids=[f"case{c.index}-{c.family}"
                              for c in CASES[:40]])
def test_formatting_is_idempotent(case):
    rendered = format_statement(parse_statement(case.query_sql()))
    assert format_statement(parse_statement(rendered)) == rendered


def test_sqlite_dialect_output_reparses():
    """The sqlite rewrite (CAST ... AS REAL around divisions, stripped
    primary keys) must itself stay inside the parseable subset, since
    replay oracles format and re-issue it statement by statement."""
    checked = 0
    for case in CASES:
        if any(t.kind in ("vpct", "hpct") or t.by for t in case.terms):
            continue  # unreduced BY never reaches the oracle directly
        if case.family == "cube":
            continue  # reaches sqlite via cube_to_union_sql instead
        rewritten = to_sqlite(case.query_sql())
        assert parse_statement(rewritten) is not None
        checked += 1
    assert checked > 0
