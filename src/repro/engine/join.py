"""Vectorized hash equi-joins (inner and left outer).

The join works in two phases, mirroring a classic hash join:

* :func:`prepare_side` digests the build side's key columns into a
  :class:`PreparedJoinSide`: per-column sorted dictionaries plus a
  CSR-style (sorted combined code -> row positions) structure.
* :func:`probe` encodes the probe side's keys against those
  dictionaries and emits matching row-index pairs.

A :class:`~repro.engine.index.HashIndex` stores a pre-built
``PreparedJoinSide``; when the executor finds an index covering the
build keys it skips the build phase entirely, which is the concrete
mechanism behind the paper's "identical indexes on D1..Dj improve the
join used to perform divisions" finding.

NULL join keys never match (SQL equality semantics) unless a key is
marked *null-safe*: the planner recognizes the generated pattern
``a = b OR (a IS NULL AND b IS NULL)`` and asks for NULL keys to join
as one ordinary value (Gray's data-cube semantics, where a NULL group
is a group like any other).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.engine import cancel, faults
from repro.engine.column import ColumnData
from repro.engine.encoding_cache import EncodingCache
from repro.engine.groupby import encode_column
from repro.engine.types import SQLType


@dataclass
class PreparedJoinSide:
    """Digested build-side keys, reusable across probes."""

    uniques: list[np.ndarray]      # per key column, sorted non-null uniques
    key_types: list[SQLType]
    gcodes: np.ndarray             # sorted unique combined codes
    row_order: np.ndarray          # build rows ordered by combined code
    offsets: np.ndarray            # CSR offsets into row_order
    n_rows: int                    # build-side row count
    null_safe: tuple[bool, ...] = ()   # per key column


def _encode_against(uniques: np.ndarray, col: ColumnData,
                    null_safe: bool = False) -> np.ndarray:
    """Codes of ``col`` values in ``uniques`` (1-based), -1 for values
    absent from the dictionary; NULLs get -1, or the joinable code 0
    when the key is null-safe."""
    values = col.values
    if col.sql_type == SQLType.VARCHAR:
        values = np.where(col.nulls, "", values)
    if len(uniques) == 0:
        codes = np.full(len(col), -1, dtype=np.int64)
    else:
        pos = np.searchsorted(uniques, values)
        pos_clipped = np.minimum(pos, len(uniques) - 1)
        hit = uniques[pos_clipped] == values
        codes = np.where(hit, pos_clipped + 1, -1).astype(np.int64)
    codes[col.nulls] = 0 if null_safe else -1
    return codes


def _null_safe_flags(null_safe: Optional[Sequence[bool]],
                     n: int) -> tuple[bool, ...]:
    if null_safe is None:
        return (False,) * n
    flags = tuple(bool(f) for f in null_safe)
    if len(flags) != n:
        raise ValueError("null_safe flags must match the key columns")
    return flags


def prepare_side(columns: list[ColumnData],
                 cache: Optional[EncodingCache] = None,
                 null_safe: Optional[Sequence[bool]] = None
                 ) -> PreparedJoinSide:
    """Digest build-side key columns (NULL-keyed rows are dropped,
    except on null-safe keys, where NULL joins as an ordinary value).

    Per-column dictionaries come from :func:`~repro.engine.groupby.
    encode_column` (whose ``uniques`` are exactly the sorted non-NULL
    distinct values), so base-table build keys reuse the
    dictionary-encoding cache instead of re-running ``np.unique``.
    """
    if not columns:
        raise ValueError("join requires at least one key column")
    cancel.checkpoint("join-build")
    faults.fire("join-build")
    flags = _null_safe_flags(null_safe, len(columns))
    n = len(columns[0])
    uniques_list: list[np.ndarray] = []
    codes_list: list[np.ndarray] = []
    for col, ns in zip(columns, flags):
        encoded = encode_column(col, cache)
        uniques_list.append(encoded.uniques)
        if ns:
            # NULL keeps its dictionary code 0 and matches probe NULLs.
            codes_list.append(encoded.codes.astype(np.int64, copy=False))
        else:
            # Join convention: NULL keys never match, so the NULL code 0
            # becomes the -1 "no match" sentinel.
            codes_list.append(np.where(encoded.codes == 0, np.int64(-1),
                                       encoded.codes))

    combined = np.zeros(n, dtype=np.int64)
    valid = np.ones(n, dtype=bool)
    for uniques, codes, ns in zip(uniques_list, codes_list, flags):
        combined = combined * np.int64(len(uniques) + 1) + \
            np.maximum(codes, 0)
        valid &= codes >= 0 if ns else codes > 0
    rows = np.nonzero(valid)[0]
    comb_valid = combined[valid]
    order = np.argsort(comb_valid, kind="stable")
    sorted_codes = comb_valid[order]
    row_order = rows[order]
    boundaries = np.ones(len(sorted_codes), dtype=bool)
    boundaries[1:] = sorted_codes[1:] != sorted_codes[:-1]
    gcodes = sorted_codes[boundaries]
    starts = np.nonzero(boundaries)[0]
    offsets = np.concatenate([starts, [len(sorted_codes)]]).astype(np.int64)
    return PreparedJoinSide(uniques_list,
                            [c.sql_type for c in columns],
                            gcodes, row_order, offsets, n, flags)


def probe(prepared: PreparedJoinSide, columns: list[ColumnData],
          outer: bool) -> tuple[np.ndarray, np.ndarray]:
    """Match probe rows against a prepared build side.

    Returns ``(probe_indices, build_indices)``: parallel arrays of row
    positions.  For an outer (left) probe, unmatched probe rows appear
    once with ``build_index == -1``.
    """
    n = len(columns[0]) if columns else 0
    flags = prepared.null_safe or (False,) * len(columns)
    combined = np.zeros(n, dtype=np.int64)
    possible = np.ones(n, dtype=bool)
    for uniques, col, ns in zip(prepared.uniques, columns, flags):
        codes = _encode_against(uniques, col, null_safe=ns)
        combined = combined * np.int64(len(uniques) + 1) + \
            np.maximum(codes, 0)
        possible &= codes >= 0 if ns else codes > 0

    slot = np.searchsorted(prepared.gcodes, combined)
    in_range = slot < len(prepared.gcodes)
    slot_safe = np.minimum(slot, max(len(prepared.gcodes) - 1, 0))
    if len(prepared.gcodes):
        matched = possible & in_range & \
            (prepared.gcodes[slot_safe] == combined)
    else:
        matched = np.zeros(n, dtype=bool)

    counts = np.zeros(n, dtype=np.int64)
    starts = np.zeros(n, dtype=np.int64)
    if len(prepared.gcodes):
        counts[matched] = (prepared.offsets[slot_safe[matched] + 1]
                           - prepared.offsets[slot_safe[matched]])
        starts[matched] = prepared.offsets[slot_safe[matched]]

    out_counts = np.where(matched, counts, 1 if outer else 0)
    total = int(out_counts.sum())
    probe_idx = np.repeat(np.arange(n, dtype=np.int64), out_counts)
    if total == 0:
        return probe_idx, np.empty(0, dtype=np.int64)

    out_offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(out_counts, out=out_offsets[1:])
    within = np.arange(total, dtype=np.int64) - \
        np.repeat(out_offsets[:-1], out_counts)
    flat_pos = np.repeat(starts, out_counts) + within
    flat_matched = np.repeat(matched, out_counts)
    build_idx = np.full(total, -1, dtype=np.int64)
    if prepared.row_order.size:
        safe = np.minimum(flat_pos, len(prepared.row_order) - 1)
        gathered = prepared.row_order[safe]
        build_idx[flat_matched] = gathered[flat_matched]
    return probe_idx, build_idx


def join_indices(left_columns: list[ColumnData],
                 right_columns: list[ColumnData],
                 outer: bool,
                 prepared_right: PreparedJoinSide | None = None,
                 cache: Optional[EncodingCache] = None,
                 null_safe: Optional[Sequence[bool]] = None
                 ) -> tuple[np.ndarray, np.ndarray, PreparedJoinSide]:
    """Join row indices for ``left JOIN right`` on positional key pairs.

    Returns ``(left_idx, right_idx, prepared)`` where ``prepared`` is
    the build-side digest actually used (caller may have supplied a
    cached one from an index; cached sides carry their own null-safe
    flags, so ``null_safe`` applies only when building fresh).
    """
    if prepared_right is None:
        prepared_right = prepare_side(right_columns, cache, null_safe)
    left_idx, right_idx = probe(prepared_right, left_columns, outer)
    return left_idx, right_idx, prepared_right
