"""Delta-debugging reduction of divergent fuzz cases.

Given a case and a predicate ("does this still diverge?"), shrink it
along every axis a human would: ddmin over the data rows, greedy
removal of grouping columns and aggregate terms, and finally dropping
schema columns the query no longer references.  The output is what
gets checked into the corpus, so small matters: a five-row, two-column
repro is a bug report; a thirty-row one is homework.

Validity is preserved structurally (a Vpct query keeps a GROUP BY, a
horizontal term keeps a non-empty BY); beyond that the predicate is
the only judge -- a candidate that merely turns the divergence into a
uniform error is rejected because the runner calls uniform errors
consistent.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Sequence, TypeVar

from repro.fuzz.generator import FuzzCase, TermSpec

T = TypeVar("T")

Predicate = Callable[[FuzzCase], bool]


def ddmin(items: list[T],
          still_fails: Callable[[list[T]], bool]) -> list[T]:
    """Zeller's ddmin: a 1-minimal failing sublist of ``items``."""
    if still_fails([]):
        return []
    n = 2
    while len(items) >= 2:
        chunk = max(1, len(items) // n)
        reduced = False
        for start in range(0, len(items), chunk):
            candidate = items[:start] + items[start + chunk:]
            if candidate and still_fails(candidate):
                items = candidate
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if chunk == 1:
                break
            n = min(len(items), n * 2)
    # Final greedy pass guarantees 1-minimality.
    i = 0
    while i < len(items) and len(items) > 1:
        candidate = items[:i] + items[i + 1:]
        if still_fails(candidate):
            items = candidate
        else:
            i += 1
    return items


def reduce_case(case: FuzzCase, still_diverges: Predicate) -> FuzzCase:
    """Shrink ``case`` while ``still_diverges`` holds."""
    case = _reduce_rows(case, still_diverges)
    case = _reduce_terms(case, still_diverges)
    case = _reduce_group_columns(case, still_diverges)
    case = _reduce_rows(case, still_diverges)   # columns gone -> retry
    case = _drop_unreferenced_columns(case)
    return case


# ----------------------------------------------------------------------
def _reduce_rows(case: FuzzCase,
                 still_diverges: Predicate) -> FuzzCase:
    rows = ddmin(list(case.rows),
                 lambda rs: still_diverges(case.with_rows(rs)))
    return case.with_rows(rows)


def _reduce_terms(case: FuzzCase,
                  still_diverges: Predicate) -> FuzzCase:
    terms = list(case.terms)
    i = 0
    while i < len(terms) and len(terms) > 1:
        candidate = replace(case,
                            terms=tuple(terms[:i] + terms[i + 1:]))
        if still_diverges(candidate):
            terms = list(candidate.terms)
        else:
            i += 1
    return replace(case, terms=tuple(terms))


def _reduce_group_columns(case: FuzzCase,
                          still_diverges: Predicate) -> FuzzCase:
    for column in list(case.group_by):
        candidate = _without_group_column(case, column)
        if candidate is not None and still_diverges(candidate):
            case = candidate
    return case


def _without_group_column(case: FuzzCase,
                          column: str) -> FuzzCase | None:
    group_by = tuple(c for c in case.group_by if c != column)
    if case.family == "vpct" and not group_by:
        return None           # Vpct requires a GROUP BY (rule 1)
    terms = tuple(
        replace(t, by=tuple(c for c in t.by if c != column))
        if t.kind == "vpct" else t
        for t in case.terms)
    return replace(case, group_by=group_by, terms=terms)


def _drop_unreferenced_columns(case: FuzzCase) -> FuzzCase:
    keep = case.referenced_columns()
    if len(keep) == len(case.columns):
        return case
    indexes = [i for i, (name, _) in enumerate(case.columns)
               if name in keep]
    columns = tuple(case.columns[i] for i in indexes)
    rows = tuple(tuple(row[i] for i in indexes) for row in case.rows)
    return replace(case, columns=columns, rows=rows)
