"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import SQLSyntaxError
from repro.sql.tokens import TokenType, tokenize


def kinds(text):
    return [(t.type, t.value) for t in tokenize(text)
            if t.type != TokenType.END]


class TestBasics:
    def test_idents_and_symbols(self):
        assert kinds("SELECT a, b FROM t") == [
            (TokenType.IDENT, "SELECT"), (TokenType.IDENT, "a"),
            (TokenType.SYMBOL, ","), (TokenType.IDENT, "b"),
            (TokenType.IDENT, "FROM"), (TokenType.IDENT, "t")]

    def test_numbers(self):
        assert kinds("1 2.5 1e3 2.5e-1") == [
            (TokenType.NUMBER, 1), (TokenType.NUMBER, 2.5),
            (TokenType.NUMBER, 1000.0), (TokenType.NUMBER, 0.25)]

    def test_number_then_dot_ident(self):
        # "1.e" must not swallow the dot into the number.
        tokens = kinds("SELECT 1, t.c")
        assert (TokenType.NUMBER, 1) in tokens
        assert (TokenType.SYMBOL, ".") in tokens

    def test_multichar_symbols(self):
        assert [v for _, v in kinds("a <> b <= c >= d != e")] == \
            ["a", "<>", "b", "<=", "c", ">=", "d", "!=", "e"]

    def test_strings_with_escapes(self):
        assert kinds("'it''s'") == [(TokenType.STRING, "it's")]

    def test_quoted_identifiers(self):
        assert kinds('"weird name" "a""b"') == [
            (TokenType.IDENT, "weird name"), (TokenType.IDENT, 'a"b')]

    def test_positions(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)


class TestComments:
    def test_line_comment(self):
        assert kinds("a -- comment\n b") == [
            (TokenType.IDENT, "a"), (TokenType.IDENT, "b")]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [
            (TokenType.IDENT, "a"), (TokenType.IDENT, "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("a /* never closed")


class TestErrors:
    def test_unterminated_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'open")

    def test_newline_in_string(self):
        with pytest.raises(SQLSyntaxError):
            tokenize("'a\nb'")

    def test_unexpected_character(self):
        with pytest.raises(SQLSyntaxError) as err:
            tokenize("a ~ b")
        assert err.value.line == 1


class TestQuotedKeywordIdentifiers:
    """A double-quoted identifier never matches a keyword.  The
    horizontal generators emit a column literally named "null" for a
    NULL pivot combination; re-parsing that name as the NULL literal
    silently nulled every value selected through it."""

    def test_quoted_flag_is_set(self):
        bare, quoted = tokenize('null "null"')[:2]
        assert bare.value == "null" and not bare.quoted
        assert quoted.value == "null" and quoted.quoted

    @pytest.mark.parametrize("word", ["null", "NULL", "case", "from",
                                      "select", "default"])
    def test_quoted_never_matches_keyword(self, word):
        token = tokenize(f'"{word}"')[0]
        assert token.type == TokenType.IDENT
        assert not token.matches_keyword(word)
        assert not token.matches_keyword(word.upper())

    def test_bare_still_matches_keyword(self):
        assert tokenize("null")[0].matches_keyword("NULL")
