"""The per-query resource governor.

A :class:`ResourceGovernor` enforces three budgets over one *query
window* -- wall-clock seconds, materialized rows, and result/temp
width -- the knobs a production deployment turns so one runaway
percentage query cannot starve the host (the ROADMAP's heavy-traffic
scenario).  Checks are *cooperative*: the executor calls
:meth:`check_time` / :meth:`charge_rows` / :meth:`check_width` at
operator boundaries (scan, join, factorize, DML append, final
projection), so a single vectorized numpy call is never interrupted
but every statement crosses a checkpoint many times.

Windows nest and are thread-local: :class:`~repro.api.database.
Database` opens a window around every statement, and the plan runner
opens an outer window around a whole generated plan so the *plan* is
the governed unit (the paper's multi-statement scripts stand or fall
together).  Inner windows join the outer one instead of resetting the
clock.  Budget overruns raise the typed errors from
:mod:`repro.errors` (:class:`~repro.errors.QueryTimeout`,
:class:`~repro.errors.RowBudgetExceeded`,
:class:`~repro.errors.WidthBudgetExceeded`).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.engine import cancel as cancel_mod
from repro.errors import (QueryTimeout, RowBudgetExceeded,
                          WidthBudgetExceeded)
from repro.obs import tracer as tracer_mod
from repro.obs.clock import Clock, MonotonicClock


@dataclass(frozen=True)
class ResourceBudget:
    """Per-query ceilings; ``None`` disables the corresponding check.

    Attributes:
        max_seconds: wall-clock budget for one query window.
        max_rows: total rows the window may materialize (scans +
            join outputs + rows written), a proxy for working-set
            pressure.
        max_result_width: widest table (columns) the window may
            produce -- the budget the paper's wide ``Hpct`` pivots
            are naturally in tension with.
    """

    max_seconds: Optional[float] = None
    max_rows: Optional[int] = None
    max_result_width: Optional[int] = None

    @property
    def unlimited(self) -> bool:
        return (self.max_seconds is None and self.max_rows is None
                and self.max_result_width is None)

    def describe(self) -> str:
        if self.unlimited:
            return "off"
        parts = []
        if self.max_seconds is not None:
            parts.append(f"timeout={self.max_seconds:g}s")
        if self.max_rows is not None:
            parts.append(f"rows={self.max_rows}")
        if self.max_result_width is not None:
            parts.append(f"width={self.max_result_width}")
        return " ".join(parts)


class _Window:
    __slots__ = ("depth", "started", "rows", "queue_wait")

    def __init__(self) -> None:
        self.depth = 0
        self.started = 0.0
        self.rows = 0
        self.queue_wait = 0.0


class ResourceGovernor:
    """Cooperative budget enforcement over thread-local query windows."""

    def __init__(self, budget: ResourceBudget = ResourceBudget(),
                 clock: Optional[Clock] = None):
        self.budget = budget
        #: Injected time source -- the same clock the tracer and any
        #: ambient deadline token use, so wall-clock budget tests run
        #: deterministically under ``ManualClock``.
        self.clock = clock if clock is not None else MonotonicClock()
        self._local = threading.local()
        #: Usage of the most recently closed top-level window on any
        #: thread (reporting only; not part of enforcement).
        self.last_usage: Optional[dict] = None

    # ------------------------------------------------------------------
    def set_budget(self, budget: ResourceBudget) -> None:
        self.budget = budget

    def _window(self) -> _Window:
        window = getattr(self._local, "window", None)
        if window is None:
            window = _Window()
            self._local.window = window
        return window

    @property
    def active(self) -> bool:
        return self._window().depth > 0

    @contextmanager
    def window(self) -> Iterator["ResourceGovernor"]:
        """Open (or join) this thread's query window.

        The outermost entry resets the clock and the row meter; nested
        entries share them, so a plan-level window governs every
        statement the plan runs.
        """
        state = self._window()
        state.depth += 1
        if state.depth == 1:
            state.started = self.clock.now()
            state.rows = 0
            state.queue_wait = 0.0
        try:
            yield self
        finally:
            state.depth -= 1
            if state.depth == 0:
                self.last_usage = self.usage()

    # ------------------------------------------------------------------
    # Checkpoints
    # ------------------------------------------------------------------
    def check_time(self, context: str = "") -> None:
        # Every governor checkpoint is also a cancellation safepoint:
        # the ambient token's deadline (which shrinks as a script
        # progresses) is enforced wherever the wall-clock budget is.
        cancel_mod.poll(context)
        limit = self.budget.max_seconds
        state = self._window()
        if limit is None or state.depth == 0:
            return
        elapsed = self.clock.now() - state.started
        if elapsed > limit:
            raise QueryTimeout(
                f"query exceeded its {limit:g}s wall-clock budget "
                f"after {elapsed:.3f}s"
                + (f" (at {context})" if context else ""))

    def charge_rows(self, n: int, context: str = "") -> None:
        """Meter ``n`` materialized rows, then re-check the clock (row
        charges are exactly the operator boundaries where time can
        have passed)."""
        state = self._window()
        if state.depth == 0:
            return
        state.rows += int(n)
        tracer = tracer_mod.active_tracer()
        if tracer is not None and tracer.enabled:
            # Row charges are the governor's checkpoints; the event
            # records where the budget meter moved (elapsed time is
            # real wall clock, so it is deliberately not an attribute
            # -- golden traces must stay deterministic).
            tracer.event("governor-check", kind="governor",
                         rows=int(n), context=context,
                         total_rows=state.rows)
        limit = self.budget.max_rows
        if limit is not None and state.rows > limit:
            raise RowBudgetExceeded(
                f"query materialized {state.rows} rows; the budget "
                f"is {limit}" + (f" (at {context})" if context else ""))
        self.check_time(context)

    def check_width(self, width: int, context: str = "") -> None:
        limit = self.budget.max_result_width
        if limit is None or self._window().depth == 0:
            return
        if width > limit:
            raise WidthBudgetExceeded(
                f"table of {width} columns exceeds the result-width "
                f"budget of {limit}"
                + (f" (at {context})" if context else ""))

    def note_queue_wait(self, seconds: float) -> None:
        """Attribute scheduler queue time to this thread's window, so
        :meth:`usage` (and through it ``ExecutionReport``) can split
        latency into waiting versus executing.  The wait does **not**
        count against the wall-clock budget: the clock starts when the
        window opens, i.e. when execution begins."""
        self._window().queue_wait += float(seconds)

    # ------------------------------------------------------------------
    def usage(self) -> dict:
        """A snapshot of the current (or just-closed) window."""
        state = self._window()
        elapsed = (self.clock.now() - state.started) \
            if state.depth else 0.0
        return {
            "active": state.depth > 0,
            "elapsed_seconds": elapsed,
            "rows_charged": state.rows,
            "queue_wait_seconds": state.queue_wait,
            "budget": {
                "max_seconds": self.budget.max_seconds,
                "max_rows": self.budget.max_rows,
                "max_result_width": self.budget.max_result_width,
            },
        }
