"""Random column generators for the synthetic workloads.

The SIGMOD paper's synthetic tables use uniformly distributed
dimensions ("Each dimension was uniformly distributed"); the census
stand-in additionally needs skewed distributions ("skewed value
distributions"), for which a Zipf-like sampler is provided.
"""

from __future__ import annotations

import numpy as np


def uniform_dimension(rng: np.random.Generator, n_rows: int,
                      cardinality: int, base: int = 1) -> np.ndarray:
    """Uniform integer dimension with values in
    ``[base, base + cardinality)``."""
    if cardinality < 1:
        raise ValueError("cardinality must be positive")
    return rng.integers(base, base + cardinality, size=n_rows,
                        dtype=np.int64)


def zipf_dimension(rng: np.random.Generator, n_rows: int,
                   cardinality: int, skew: float = 1.1,
                   base: int = 1) -> np.ndarray:
    """Skewed integer dimension: value ``base + i`` has probability
    proportional to ``1 / (i + 1) ** skew``."""
    if cardinality < 1:
        raise ValueError("cardinality must be positive")
    ranks = np.arange(1, cardinality + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    weights /= weights.sum()
    return base + rng.choice(cardinality, size=n_rows, p=weights) \
        .astype(np.int64)


def uniform_measure(rng: np.random.Generator, n_rows: int,
                    low: float = 1.0, high: float = 100.0) -> np.ndarray:
    """Uniform REAL measure in ``[low, high)``."""
    return rng.uniform(low, high, size=n_rows)


def sequence(n_rows: int, base: int = 1) -> np.ndarray:
    """A dense surrogate key column."""
    return np.arange(base, base + n_rows, dtype=np.int64)
