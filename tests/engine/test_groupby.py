"""Unit tests for the factorization (grouping) machinery."""

import numpy as np

from repro.engine.column import ColumnData
from repro.engine.groupby import (distinct_indices, encode_column,
                                  factorize)
from repro.engine.types import SQLType


def int_col(values):
    return ColumnData.from_values(SQLType.INTEGER, values)


def str_col(values):
    return ColumnData.from_values(SQLType.VARCHAR, values)


class TestEncodeColumn:
    def test_nulls_get_code_zero(self):
        enc = encode_column(int_col([5, None, 5, 7]))
        assert enc.codes[1] == 0
        assert enc.codes[0] == enc.codes[2] != 0

    def test_null_distinct_from_empty_string(self):
        enc = encode_column(str_col(["", None]))
        assert enc.codes[0] != enc.codes[1]

    def test_uniques_exclude_nulls(self):
        # A NULL-bearing VARCHAR column must not grow a spurious ""
        # dictionary entry (the old NULL-substitution did).
        enc = encode_column(str_col(["a", None, "b"]))
        assert enc.uniques.tolist() == ["a", "b"]
        assert enc.cardinality == 3  # two values + the NULL slot

    def test_numeric_uniques_exclude_null_filler(self):
        enc = encode_column(int_col([5, None, 7]))
        assert enc.uniques.tolist() == [5, 7]

    def test_all_null_column(self):
        enc = encode_column(int_col([None, None]))
        assert enc.codes.tolist() == [0, 0]
        assert len(enc.uniques) == 0

    def test_decode_roundtrip(self):
        col = int_col([3, None, 1, 3])
        enc = encode_column(col)
        decoded = enc.decode(enc.codes)
        assert decoded.to_pylist() == col.to_pylist()

    def test_empty(self):
        enc = encode_column(int_col([]))
        assert len(enc.codes) == 0


class TestFactorize:
    def test_single_column(self):
        grouping = factorize([int_col([1, 2, 1, 2, 3])], 5)
        assert grouping.n_groups == 3
        ids = grouping.group_ids
        assert ids[0] == ids[2]
        assert ids[1] == ids[3]
        assert len(set(ids.tolist())) == 3

    def test_no_columns_is_single_global_group(self):
        grouping = factorize([], 4)
        assert grouping.n_groups == 1
        assert (grouping.group_ids == 0).all()

    def test_multi_column(self):
        grouping = factorize([int_col([1, 1, 2, 2]),
                              str_col(["a", "b", "a", "a"])], 4)
        assert grouping.n_groups == 3
        assert grouping.group_ids[2] == grouping.group_ids[3]

    def test_nulls_group_together(self):
        grouping = factorize([int_col([None, None, 1])], 3)
        assert grouping.n_groups == 2
        assert grouping.group_ids[0] == grouping.group_ids[1]

    def test_key_column_reconstruction(self):
        grouping = factorize([int_col([2, 1, 2, None])], 4)
        keys = grouping.key_column(0).to_pylist()
        assert sorted(keys, key=lambda v: (v is None, v)) == [1, 2, None]

    def test_multi_key_reconstruction(self):
        a = int_col([1, 1, 2])
        b = str_col(["x", "y", "x"])
        grouping = factorize([a, b], 3)
        keys = set(zip(grouping.key_column(0).to_pylist(),
                       grouping.key_column(1).to_pylist()))
        assert keys == {(1, "x"), (1, "y"), (2, "x")}

    def test_lexicographic_fallback_matches_radix(self):
        # Force the fallback by shrinking the code-space limit.
        import repro.engine.groupby as groupby
        columns = [int_col([1, 2, 1, 2, None, 1]),
                   int_col([7, 7, 8, 8, 7, 7])]
        fast = factorize(columns, 6)
        original = groupby._MAX_CODE_SPACE
        groupby._MAX_CODE_SPACE = 1
        try:
            slow = factorize(columns, 6)
        finally:
            groupby._MAX_CODE_SPACE = original
        assert fast.n_groups == slow.n_groups
        # Group partitions must be identical (ids may be permuted).
        mapping = {}
        for f, s in zip(fast.group_ids, slow.group_ids):
            assert mapping.setdefault(f, s) == s


class TestDistinctIndices:
    def test_keeps_first_occurrence(self):
        indices = distinct_indices([int_col([5, 3, 5, 3, 9])], 5)
        assert indices.tolist() == [0, 1, 4]

    def test_empty(self):
        assert distinct_indices([int_col([])], 0).tolist() == []

    def test_multi_column(self):
        indices = distinct_indices(
            [int_col([1, 1, 1]), int_col([2, 2, 3])], 3)
        assert indices.tolist() == [0, 2]

    def test_nulls_are_one_distinct_value(self):
        indices = distinct_indices([int_col([None, 4, None, 4])], 4)
        assert indices.tolist() == [0, 1]

    def test_appearance_order_with_unsorted_values(self):
        # First occurrences must come back in row order even when the
        # values themselves are descending (np.unique sorts by value;
        # the positions are re-sorted afterwards).
        indices = distinct_indices([int_col([9, 1, 5, 9, 1])], 5)
        assert indices.tolist() == [0, 1, 2]
