"""Sessions: defaults, lifecycle, DB-API state, admission accounting."""

from __future__ import annotations

import threading

import pytest

from repro.errors import (AdmissionRejected, CrossThreadError,
                          SessionClosed)
from repro.service import QueryService, SessionDefaults


class TestSessionDefaults:
    def test_none_means_inherit(self, db):
        resolved = SessionDefaults().resolve(db.options)
        assert resolved == db.options
        assert resolved is not db.options

    def test_overrides_apply(self, db):
        resolved = SessionDefaults(
            case_dispatch="hash", use_indexes=False,
            use_encoding_cache=False, parallel_workers=2,
            parallel_row_threshold=5).resolve(db.options)
        assert resolved.case_dispatch == "hash"
        assert resolved.use_indexes is False
        assert resolved.use_encoding_cache is False
        assert resolved.parallel_degree == 2
        assert resolved.parallel_row_threshold == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            SessionDefaults(case_dispatch="bogus")
        with pytest.raises(ValueError):
            SessionDefaults(parallel_workers=0)

    def test_defaults_steer_read_execution(self, db):
        with QueryService(db, workers=2) as service:
            defaults = SessionDefaults(parallel_workers=2,
                                       parallel_row_threshold=1)
            with service.create_session(defaults) as session:
                report = session.execute(
                    "SELECT d1, sum(a) FROM f GROUP BY d1")
                assert report.parallel_degree == 2


class TestSessionLifecycle:
    def test_ids_are_unique(self, service):
        first, second = (service.create_session(),
                         service.create_session())
        assert first.id != second.id
        first.close()
        second.close()

    def test_closed_session_rejects_submissions(self, service):
        session = service.create_session()
        session.close()
        with pytest.raises(SessionClosed):
            session.submit("SELECT 1")
        with pytest.raises(SessionClosed):
            session.cursor()

    def test_close_is_idempotent(self, service):
        session = service.create_session()
        session.close()
        session.close()

    def test_manager_forgets_closed_sessions(self, service):
        session = service.create_session()
        assert session in service.sessions.active()
        session.close()
        assert session not in service.sessions.active()

    def test_context_manager_closes(self, service):
        with service.create_session() as session:
            pass
        assert session.closed


class TestInFlightAccounting:
    def test_in_flight_cap_rejects(self, db):
        with QueryService(db, workers=1,
                          session_inflight_cap=1) as service:
            release = threading.Event()
            session = service.create_session()
            # Occupy the single worker so the next submit stays
            # admitted-but-queued... except the cap of 1 refuses it.
            blocker = service.scheduler._pool.submit(release.wait, 5)
            try:
                session.submit("SELECT 1")
                with pytest.raises(AdmissionRejected):
                    session.submit("SELECT 1")
            finally:
                release.set()
                blocker.result()

    def test_in_flight_drains(self, service):
        with service.create_session() as session:
            session.execute("SELECT count(*) FROM f")
            assert session.in_flight == 0

    def test_rejection_is_retryable(self):
        assert AdmissionRejected("full").retryable


class TestSessionCursorState:
    def test_cursor_state_is_private(self, service):
        first = service.create_session()
        second = service.create_session()
        c1 = first.cursor()
        c2 = second.cursor()
        c1.execute("SELECT d1 FROM f WHERE d2 = 'x' ORDER BY d1")
        c2.execute("SELECT count(*) FROM f")
        assert c1.fetchone() == (1,)
        assert c2.fetchone() == (4,)
        assert c1.fetchone() == (2,)
        first.close()
        second.close()

    def test_cursor_bound_to_creating_thread(self, service):
        with service.create_session() as session:
            cursor = session.cursor()
            caught: list = []

            def use_elsewhere():
                try:
                    cursor.execute("SELECT 1")
                except CrossThreadError as exc:
                    caught.append(exc)

            worker = threading.Thread(target=use_elsewhere)
            worker.start()
            worker.join()
            assert len(caught) == 1

    def test_connection_reused(self, service):
        with service.create_session() as session:
            assert session.connection() is session.connection()
