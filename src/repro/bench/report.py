"""Formatting experiment results as paper-style tables.

The harness produces :class:`~repro.bench.harness.ExperimentResult`
cells; this module pivots them into the row/column layout the papers
print (queries down, strategies across) as aligned plain text or
markdown.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.bench.harness import ExperimentResult


def pivot_results(results: Iterable[ExperimentResult],
                  value: str = "seconds"
                  ) -> tuple[list[str], list[list[str]]]:
    """Pivot cells into (strategy headers, rows of label + values).

    ``value`` selects the reported metric: ``seconds``, ``logical_io``,
    ``case_evaluations`` or ``statements``.
    """
    strategies: list[str] = []
    labels: list[str] = []
    cells: dict[tuple[str, str], str] = {}
    for result in results:
        if result.strategy not in strategies:
            strategies.append(result.strategy)
        if result.label not in labels:
            labels.append(result.label)
        raw = getattr(result, value)
        if value == "seconds":
            rendered = f"{raw:.3f}"
        else:
            rendered = str(raw)
        cells[(result.label, result.strategy)] = rendered
    rows = []
    for label in labels:
        rows.append([label] + [cells.get((label, s), "-")
                               for s in strategies])
    return strategies, rows


def format_table(title: str, results: Iterable[ExperimentResult],
                 value: str = "seconds") -> str:
    """An aligned plain-text table (queries x strategies)."""
    strategies, rows = pivot_results(results, value)
    header = ["query"] + strategies
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    out = [title, line(header), line(["-" * w for w in widths])]
    out.extend(line(row) for row in rows)
    return "\n".join(out)


def format_markdown(title: str, results: Iterable[ExperimentResult],
                    value: str = "seconds") -> str:
    """The same pivot as a markdown table."""
    strategies, rows = pivot_results(results, value)
    out = [f"### {title}", "",
           "| query | " + " | ".join(strategies) + " |",
           "|" + "---|" * (len(strategies) + 1)]
    for row in rows:
        cells = [cell.replace("|", "\\|") for cell in row]
        out.append("| " + " | ".join(cells) + " |")
    return "\n".join(out)
