"""The exact query workloads of both evaluation sections.

Each row of the papers' result tables lists the fact table, the
grouping columns (``D1, ..., Dj``, set in italics in the papers) and
the sub-grouping columns (``Dj+1, ..., Dk``).  A :class:`QuerySpec`
captures one row and renders the three query forms the experiments
compare:

* ``vpct_sql()``  -- ``SELECT D1..Dk, Vpct(A BY Dj+1..Dk) FROM F
  GROUP BY D1..Dk`` (Tables 4 and 6);
* ``hpct_sql()``  -- ``SELECT D1..Dj, Hpct(A BY Dj+1..Dk) FROM F
  GROUP BY D1..Dj`` (Tables 5 and 6);
* ``hagg_sql()``  -- ``SELECT D1..Dj, sum(A BY Dj+1..Dk) FROM F
  GROUP BY D1..Dj`` (DMKD Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class QuerySpec:
    """One experiment row: a fact table, totals columns and BY columns."""

    label: str
    table: str
    measure: str
    totals: tuple[str, ...]     # D1..Dj (italics in the papers)
    by: tuple[str, ...]         # Dj+1..Dk

    @property
    def group_by_all(self) -> tuple[str, ...]:
        """D1..Dk for the vertical form (totals first, BY appended)."""
        return self.totals + self.by

    def vpct_sql(self) -> str:
        dims = ", ".join(self.group_by_all)
        by = f" BY {', '.join(self.by)}" if self.totals else ""
        # With no totals columns the BY clause is omitted entirely:
        # Vpct(A) computes percentages against the global total.
        if not self.totals:
            call = f"Vpct({self.measure})"
        else:
            call = f"Vpct({self.measure}{by})"
        return (f"SELECT {dims}, {call} FROM {self.table} "
                f"GROUP BY {dims}")

    def hpct_sql(self) -> str:
        call = f"Hpct({self.measure} BY {', '.join(self.by)})"
        if not self.totals:
            return f"SELECT {call} FROM {self.table}"
        dims = ", ".join(self.totals)
        return (f"SELECT {dims}, {call} FROM {self.table} "
                f"GROUP BY {dims}")

    def hagg_sql(self, func: str = "sum") -> str:
        call = f"{func}({self.measure} BY {', '.join(self.by)})"
        if not self.totals:
            return f"SELECT {call} FROM {self.table}"
        dims = ", ".join(self.totals)
        return (f"SELECT {dims}, {call} FROM {self.table} "
                f"GROUP BY {dims}")


#: SIGMOD 2004 Tables 4/5/6: eight queries.  First line of each paper
#: row = BY columns; italicized second line = totals columns.
SIGMOD_QUERIES: list[QuerySpec] = [
    QuerySpec("employee gender", "employee", "salary",
              totals=(), by=("gender",)),
    QuerySpec("employee gender | marstatus", "employee", "salary",
              totals=("marstatus",), by=("gender",)),
    QuerySpec("employee gender | educat,marstatus", "employee",
              "salary", totals=("educat", "marstatus"), by=("gender",)),
    QuerySpec("employee gender,educat | age,marstatus", "employee",
              "salary", totals=("age", "marstatus"),
              by=("gender", "educat")),
    QuerySpec("sales dweek", "sales", "salesamt",
              totals=(), by=("dweek",)),
    QuerySpec("sales monthNo | dweek", "sales", "salesamt",
              totals=("dweek",), by=("monthno",)),
    QuerySpec("sales dept | dweek,monthNo", "sales", "salesamt",
              totals=("dweek", "monthno"), by=("dept",)),
    QuerySpec("sales dept,store | dweek,monthNo", "sales", "salesamt",
              totals=("dweek", "monthno"), by=("dept", "store")),
]

#: DMKD 2004 Table 3 query shapes (the same six transactionLine rows
#: run at two scales; the five census rows run at one).
DMKD_CENSUS_QUERIES: list[QuerySpec] = [
    QuerySpec("UScensus iSchool", "uscensus", "wage",
              totals=(), by=("ischool",)),
    QuerySpec("UScensus iClass", "uscensus", "wage",
              totals=(), by=("iclass",)),
    QuerySpec("UScensus iMarital", "uscensus", "wage",
              totals=(), by=("imarital",)),
    QuerySpec("UScensus dAge | iMarital", "uscensus", "wage",
              totals=("dage",), by=("imarital",)),
    QuerySpec("UScensus dAge,iClass | iSchool,iSex", "uscensus",
              "wage", totals=("dage", "iclass"),
              by=("ischool", "isex")),
]

DMKD_TRANSACTION_QUERIES: list[QuerySpec] = [
    QuerySpec("transactionLine regionId", "transactionline",
              "salesamt", totals=(), by=("regionid",)),
    QuerySpec("transactionLine monthNo", "transactionline",
              "salesamt", totals=(), by=("monthno",)),
    QuerySpec("transactionLine subdeptId", "transactionline",
              "salesamt", totals=(), by=("subdeptid",)),
    QuerySpec("transactionLine monthNo | dayOfWeekNo",
              "transactionline", "salesamt", totals=("monthno",),
              by=("dayofweekno",)),
    QuerySpec("transactionLine deptId | dayOfWeekNo,monthNo",
              "transactionline", "salesamt", totals=("deptid",),
              by=("dayofweekno", "monthno")),
    QuerySpec("transactionLine deptId,storeId | dayOfWeekNo,monthNo",
              "transactionline", "salesamt",
              totals=("deptid", "storeid"),
              by=("dayofweekno", "monthno")),
]

DMKD_QUERIES: list[QuerySpec] = (DMKD_CENSUS_QUERIES
                                 + DMKD_TRANSACTION_QUERIES)
