"""Fuzz-test hygiene: same temp-table leak guard as the integration
package -- every engine database a fuzz case builds must come out of
the run with zero ``_``-prefixed plan temps.  Opt out with
``@pytest.mark.allow_temp_leaks``."""

from __future__ import annotations

import pytest

from tests.conftest import assert_no_temp_leaks, install_database_tracker


@pytest.fixture(autouse=True)
def no_temp_leaks(request, monkeypatch):
    if request.node.get_closest_marker("allow_temp_leaks"):
        yield
        return
    created = install_database_tracker(monkeypatch)
    yield
    assert_no_temp_leaks(created)
