"""Table schemas: ordered, typed column definitions plus key metadata."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.engine.types import SQLType
from repro.errors import CatalogError


#: Default ceiling on columns per table.  Real DBMSs have such limits
#: (the paper discusses hitting them with horizontal aggregations); the
#: catalog can lower it to exercise vertical partitioning.
DEFAULT_MAX_COLUMNS = 2048

#: Default ceiling on identifier length (Teradata's classic limit was 30).
DEFAULT_MAX_NAME_LENGTH = 128


@dataclass(frozen=True)
class ColumnDef:
    """One column: a name and a SQL type."""

    name: str
    sql_type: SQLType

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.name} {self.sql_type}"


@dataclass
class TableSchema:
    """An ordered list of column definitions with an optional primary key.

    Column names are case-preserving but matched case-insensitively, as
    in SQL.  The primary key is metadata only -- uniqueness enforcement
    is the loader's concern -- but the executor uses it to pick join and
    update keys, mirroring how the paper relies on primary-key indexes.
    """

    name: str
    columns: list[ColumnDef] = field(default_factory=list)
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for col in self.columns:
            key = col.name.lower()
            if key in seen:
                raise CatalogError(
                    f"duplicate column {col.name!r} in table {self.name!r}")
            seen.add(key)
        for key_col in self.primary_key:
            if not self.has_column(key_col):
                raise CatalogError(
                    f"primary key column {key_col!r} not in table "
                    f"{self.name!r}")

    # ------------------------------------------------------------------
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def has_column(self, name: str) -> bool:
        lowered = name.lower()
        return any(c.name.lower() == lowered for c in self.columns)

    def column(self, name: str) -> ColumnDef:
        lowered = name.lower()
        for col in self.columns:
            if col.name.lower() == lowered:
                return col
        raise CatalogError(
            f"no column {name!r} in table {self.name!r}")

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == lowered:
                return i
        raise CatalogError(
            f"no column {name!r} in table {self.name!r}")

    def column_type(self, name: str) -> SQLType:
        return self.column(name).sql_type

    def width(self) -> int:
        return len(self.columns)

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, name: str, columns: Iterable[tuple[str, SQLType]],
              primary_key: Sequence[str] = ()) -> "TableSchema":
        """Convenience constructor from ``(name, type)`` pairs."""
        defs = [ColumnDef(n, t) for n, t in columns]
        return cls(name=name, columns=defs,
                   primary_key=tuple(primary_key))
