"""Overload benchmark: the query service past its capacity.

Written to ``BENCH_overload.json`` by ``python -m repro.bench --suite
overload``.  Three experiments over the paper's ``sales`` fact table:

* **unloaded baseline** -- the read mix (plain GROUP BY aggregations
  plus Vpct/Hpct percentage queries) run one at a time through an idle
  service; its p99 latency is the reference the overload run is judged
  against.
* **open-loop arrival ramp** -- the same mix offered at a fixed
  arrival rate past the pool's estimated capacity (arrivals keep
  coming regardless of completions, as real clients do), once with
  load shedding on and once off, under the same per-query deadline.
  Reports goodput (deadline-met completions per second), shed rate,
  and the latency distribution of *accepted* queries.  The acceptance
  bar: with shedding on, accepted-query p99 stays under 2x the
  unloaded p99 -- refusing work at admission is what keeps the queue
  from stretching every accepted query's wait.
* **deadline bookkeeping overhead** -- the same aggregation run with
  no token versus a generous (never-firing) deadline token; the
  safepoint checks and clock reads must cost under 5%.

Honesty note: the ramp's arrival interval is derived from the
measured unloaded mean, so wall times differ per host while the
*shape* (overload at ~2x capacity) is preserved.  Shed-off goodput
counts deadline cancellations as failed work -- that is the point:
without shedding the service burns workers on queries whose deadlines
queue wait already spent.
"""

from __future__ import annotations

import os
import statistics
import time

from repro.api.database import Database
from repro.bench.concurrency import _percentile, _read_workload
from repro.errors import (AdmissionRejected, OverloadError,
                          QueryCancelledError)
from repro.service import QueryService, SessionDefaults


def _unloaded_baseline(db: Database, queries: list[str],
                       deadline: float) -> dict:
    """The read mix one query at a time through an idle service."""
    latencies = []
    with QueryService(db, workers=2) as service:
        defaults = SessionDefaults(deadline_seconds=deadline)
        with service.create_session(defaults) as session:
            for sql in queries:
                report = session.execute(sql)
                latencies.append(report.queue_wait_seconds
                                 + report.elapsed_seconds)
    return {
        "queries": len(latencies),
        "mean_seconds": round(statistics.mean(latencies), 6),
        "p50_seconds": round(_percentile(latencies, 0.50), 6),
        "p99_seconds": round(_percentile(latencies, 0.99), 6),
    }


def _open_loop_ramp(db: Database, queries: list[str], interval: float,
                    deadline: float, shed_enabled: bool,
                    workers: int, queue_depth: int) -> dict:
    """Offer ``queries`` at one arrival every ``interval`` seconds,
    regardless of completions (open loop), and account for every
    offered query: accepted / shed / queue-full at admission, then
    completed / deadline-cancelled for the accepted ones."""
    shed = queue_full = cancelled = 0
    futures = []
    # The breaker is effectively disabled: a ramp past capacity
    # *should* rack up deadline cancellations on the shed-off leg, and
    # tripping it would turn the comparison into a breaker benchmark.
    with QueryService(db, workers=workers, max_queue_depth=queue_depth,
                      session_inflight_cap=len(queries),
                      shed_enabled=shed_enabled,
                      breaker_threshold=10 ** 9) as service:
        defaults = SessionDefaults(deadline_seconds=deadline)
        with service.create_session(defaults) as session:
            started = time.perf_counter()
            for i, sql in enumerate(queries):
                delay = started + i * interval - time.perf_counter()
                if delay > 0:
                    time.sleep(delay)
                try:
                    futures.append(session.submit(sql))
                except OverloadError:
                    shed += 1
                except AdmissionRejected:
                    queue_full += 1
            accepted_latencies = []
            for future in futures:
                try:
                    report = future.result()
                except QueryCancelledError:
                    cancelled += 1
                else:
                    accepted_latencies.append(
                        report.queue_wait_seconds
                        + report.elapsed_seconds)
            elapsed = time.perf_counter() - started
    offered = len(queries)
    completed = len(accepted_latencies)
    entry = {
        "shed_enabled": shed_enabled,
        "offered": offered,
        "accepted": len(futures),
        "shed": shed,
        "queue_full": queue_full,
        "deadline_cancelled": cancelled,
        "completed": completed,
        "elapsed_seconds": round(elapsed, 6),
        "goodput_qps": round(completed / elapsed, 4),
        "shed_rate": round(shed / offered, 4),
    }
    if accepted_latencies:
        entry["accepted_mean_seconds"] = round(
            statistics.mean(accepted_latencies), 6)
        entry["accepted_p50_seconds"] = round(
            _percentile(accepted_latencies, 0.50), 6)
        entry["accepted_p99_seconds"] = round(
            _percentile(accepted_latencies, 0.99), 6)
    return entry


def _deadline_overhead(db: Database, repeats: int,
                       iterations: int = 5) -> dict:
    """Best-of timing of one aggregation with no cancel token versus a
    generous deadline token (every safepoint then does the hit count,
    the fired check and, at governor checkpoints, a clock read)."""
    sql = ("SELECT dweek, monthno, sum(salesamt), avg(salesamt) "
           "FROM sales GROUP BY dweek, monthno")

    def best(deadline):
        runs = []
        for _ in range(repeats):
            started = time.perf_counter()
            for _ in range(iterations):
                db.execute(sql, deadline_seconds=deadline)
            runs.append((time.perf_counter() - started) / iterations)
        return min(runs)

    plain = best(None)
    tokened = best(1e9)
    overhead = (tokened - plain) / plain if plain else 0.0
    return {
        "query": sql,
        "repeats": repeats,
        "iterations_per_run": iterations,
        "no_token_seconds": round(plain, 6),
        "deadline_token_seconds": round(tokened, 6),
        "estimated_overhead_fraction": round(overhead, 6),
        "note": "negative fractions are timer noise: the bookkeeping "
                "is below measurement resolution on this host",
    }


def run_overload_benchmark(sales_n: int = 60_000,
                           offered: int = 60,
                           arrival_multiplier: float = 2.0,
                           workers: int = 2,
                           queue_depth: int = 32,
                           repeats: int = 3) -> dict:
    """The full overload suite; returns the JSON-ready report."""
    from repro.datagen import load_sales

    db = Database()
    load_sales(db, sales_n)

    queries = _read_workload(offered)
    # Size the deadline and arrival rate from the measured baseline so
    # the ramp lands past capacity on any host: arrivals at
    # ``arrival_multiplier`` times the pool's estimated throughput,
    # deadlines a few service times long (loose enough that unloaded
    # queries never trip it, tight enough that a backlog does).
    baseline = _unloaded_baseline(db, _read_workload(20),
                                  deadline=1e9)
    mean = baseline["mean_seconds"]
    deadline = max(0.05, 5 * mean)
    interval = mean / (workers * arrival_multiplier)

    ramp_on = _open_loop_ramp(db, queries, interval, deadline,
                              shed_enabled=True, workers=workers,
                              queue_depth=queue_depth)
    ramp_off = _open_loop_ramp(db, queries, interval, deadline,
                               shed_enabled=False, workers=workers,
                               queue_depth=queue_depth)
    overhead = _deadline_overhead(db, repeats=repeats)

    p99_accepted = ramp_on.get("accepted_p99_seconds")
    p99_unloaded = baseline["p99_seconds"]
    report = {
        "workload": f"sales n={sales_n}; open-loop read mix (plain + "
                    f"Vpct/Hpct) at {arrival_multiplier}x estimated "
                    f"capacity, {workers} workers",
        "cpu_count": os.cpu_count(),
        "note": "arrival interval and deadline are derived from the "
                "measured unloaded mean, so absolute times vary per "
                "host while the overload shape is preserved",
        "unloaded": baseline,
        "ramp": {
            "offered": offered,
            "arrival_multiplier": arrival_multiplier,
            "interval_seconds": round(interval, 6),
            "deadline_seconds": round(deadline, 6),
            "workers": workers,
            "max_queue_depth": queue_depth,
            "shed_on": ramp_on,
            "shed_off": ramp_off,
        },
        "deadline_overhead": overhead,
    }
    report["summary"] = {
        "goodput_shed_on_qps": ramp_on["goodput_qps"],
        "goodput_shed_off_qps": ramp_off["goodput_qps"],
        "shed_rate": ramp_on["shed_rate"],
        "accepted_p99_shed_on_seconds": p99_accepted,
        "unloaded_p99_seconds": p99_unloaded,
        "accepted_p99_under_2x_unloaded": (
            p99_accepted is not None
            and p99_accepted < 2 * p99_unloaded),
        "deadline_overhead_fraction":
            overhead["estimated_overhead_fraction"],
        "deadline_overhead_within_5pct":
            overhead["estimated_overhead_fraction"] < 0.05,
    }
    return report
