"""A table-versioned cache of dictionary encodings.

Every generated percentage plan factorizes the *same* base-table key
columns over and over: a single ``Vpct(A BY city) GROUP BY state,
city`` plan encodes ``state``/``city`` for the Fk scan, the Fj scan and
the division join, and a benchmark sweep repeats that across queries
over an immutable fact table.  The :class:`EncodingCache` memoizes
:class:`~repro.engine.groupby.EncodedColumn` results keyed by
``(table, version, column)`` so the ``np.unique`` pass runs once per
base-table column per table version.

Keying discipline (what makes stale answers impossible):

* every :class:`~repro.engine.table.Table` instance carries a globally
  unique, monotonically increasing ``version``;
* only catalog-resident tables are *sealed*: sealing stamps each
  column's :class:`~repro.engine.column.ColumnData` with a
  ``cache_token`` of ``(table, version, column)``;
* every DML path (INSERT/UPDATE/DELETE/bulk load) swaps in a brand-new
  ``Table`` via the catalog, which seals the replacement under its new
  version -- old tokens are never minted again, so a cached entry can
  only ever be looked up by the exact immutable column content it was
  computed from.

The cache is bounded (LRU by payload bytes), thread-safe, and
deliberately invisible to the logical-I/O cost model: it never touches
``rows_scanned``/``rows_written``/``rows_updated``.  Hits, misses and
evictions are tracked separately (and mirrored into the bound
:class:`~repro.engine.stats.StatsCollector`) so EXPLAIN and the bench
harness can report them without perturbing the paper's Tables 4-6
cost shapes.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import TYPE_CHECKING, Optional

from repro.engine import faults
from repro.obs import tracer as tracer_mod

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.engine.groupby import EncodedColumn
    from repro.engine.stats import StatsCollector

#: A cache token: (table name lower-cased, table version, column name
#: lower-cased).  Minted exclusively by ``Table.seal_cache_tokens``.
CacheToken = tuple[str, int, str]

#: Default byte budget (codes + dictionaries) for one database.
DEFAULT_ENCODING_CACHE_BYTES = 64 * 1024 * 1024


def _payload_bytes(encoded: "EncodedColumn") -> int:
    """Approximate memory held by one cached encoding."""
    total = encoded.codes.nbytes + encoded.uniques.nbytes
    if encoded.uniques.dtype == object:
        # Object arrays only store pointers; charge the string payloads
        # too (dictionaries are small -- one entry per distinct value).
        total += sum(sys.getsizeof(u) for u in encoded.uniques)
    return int(total)


class EncodingCache:
    """Bounded, thread-safe LRU of column dictionary encodings."""

    def __init__(self, max_bytes: int = DEFAULT_ENCODING_CACHE_BYTES):
        self.max_bytes = int(max_bytes)
        self.enabled = True
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheToken, tuple[EncodedColumn, int]]" \
            = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._stats: Optional["StatsCollector"] = None

    # ------------------------------------------------------------------
    def bind_stats(self, stats: "StatsCollector") -> None:
        """Mirror hit/miss/eviction counts into ``stats`` (separate
        counters; logical I/O is deliberately untouched)."""
        self._stats = stats

    # ------------------------------------------------------------------
    def get(self, token: CacheToken) -> Optional["EncodedColumn"]:
        """The cached encoding for ``token``, or None (counted as a
        miss -- callers only ask for tokens they are about to fill)."""
        if not self.enabled:
            return None
        faults.fire("encoding-cache")
        with self._lock:
            entry = self._entries.get(token)
            if entry is None:
                self.misses += 1
                if self._stats is not None:
                    self._stats.add(encode_cache_misses=1)
            else:
                self._entries.move_to_end(token)
                self.hits += 1
                if self._stats is not None:
                    self._stats.add(encode_cache_hits=1)
        tracer = tracer_mod.active_tracer()
        if tracer is not None and tracer.enabled:
            counter = ("encode_cache_misses" if entry is None
                       else "encode_cache_hits")
            tracer.event("encoding-cache", kind="charge",
                         table=str(token[0]), **{counter: 1})
        return entry[0] if entry is not None else None

    def put(self, token: CacheToken, encoded: "EncodedColumn") -> None:
        """Insert an encoding, evicting least-recently-used entries
        until the byte budget holds.  Oversized payloads are skipped."""
        if not self.enabled:
            return
        nbytes = _payload_bytes(encoded)
        if nbytes > self.max_bytes:
            return
        with self._lock:
            old = self._entries.pop(token, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[token] = (encoded, nbytes)
            self._bytes += nbytes
            while self._bytes > self.max_bytes and self._entries:
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self._bytes -= evicted_bytes
                self.evictions += 1
                if self._stats is not None:
                    self._stats.add(encode_cache_evictions=1)

    # ------------------------------------------------------------------
    def invalidate_table(self, table_name: str) -> None:
        """Drop every entry of ``table_name`` (any version).

        Versioned tokens already make stale entries unreachable; this
        is memory hygiene so DML/DROP on a hot table frees its budget
        immediately instead of waiting for LRU churn.
        """
        lowered = table_name.lower()
        with self._lock:
            stale = [t for t in self._entries if t[0] == lowered]
            for token in stale:
                _, nbytes = self._entries.pop(token)
                self._bytes -= nbytes

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def reset_counters(self) -> None:
        with self._lock:
            self.hits = self.misses = self.evictions = 0

    # ------------------------------------------------------------------
    @property
    def entry_count(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def payload_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def tokens(self) -> list[CacheToken]:
        """Current tokens, LRU-first (introspection/tests)."""
        with self._lock:
            return list(self._entries)

    def info(self) -> dict:
        """A snapshot for EXPLAIN and the bench harness."""
        with self._lock:
            lookups = self.hits + self.misses
            return {
                "enabled": self.enabled,
                "entries": len(self._entries),
                "bytes": self._bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / lookups) if lookups else 0.0,
            }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EncodingCache entries={len(self._entries)} "
                f"bytes={self._bytes}/{self.max_bytes} "
                f"hits={self.hits} misses={self.misses}>")
