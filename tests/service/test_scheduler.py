"""Scheduler: classification, admission, reports, write semantics."""

from __future__ import annotations

import threading

import pytest

from repro.engine.table import Table
from repro.errors import AdmissionRejected, ServiceError, SQLSyntaxError
from repro.service import QueryService
from repro.service.scheduler import _classify
from repro.sql.parser import parse_script


class TestClassification:
    @pytest.mark.parametrize("sql,expected", [
        ("SELECT * FROM f", "read"),
        ("EXPLAIN SELECT d1 FROM f", "read"),
        ("SELECT d1 FROM f; SELECT d2 FROM f", "read"),
        ("SELECT d1, Vpct(a) FROM f GROUP BY d1", "read"),
        ("INSERT INTO f VALUES (9, 'z', 1.0)", "write"),
        ("CREATE TABLE t (x INT)", "write"),
        ("SELECT d1 FROM f; DROP TABLE f", "write"),
    ])
    def test_kind(self, sql, expected):
        assert _classify(parse_script(sql)) == expected


class TestReports:
    def test_read_report_fields(self, service):
        report = service.execute(
            "SELECT d1, count(*) FROM f GROUP BY d1")
        assert report.kind == "read"
        assert report.statements_run == 1
        assert isinstance(report.result, Table)
        assert report.snapshot_version == service.db.catalog.version
        assert report.queue_wait_seconds >= 0.0
        assert report.elapsed_seconds > 0.0
        assert report.governor_usage["queue_wait_seconds"] == \
            pytest.approx(report.queue_wait_seconds)
        assert report.parallel_degree == 1

    def test_write_report_fields(self, service):
        report = service.execute(
            "INSERT INTO f VALUES (5, 'z', 1.0); "
            "INSERT INTO f VALUES (6, 'z', 2.0)")
        assert report.kind == "write"
        assert report.results == [1, 1]
        assert report.statements_run == 2
        assert report.snapshot_version == service.db.catalog.version

    def test_script_returns_one_result_per_statement(self, service):
        report = service.execute(
            "SELECT count(*) FROM f; SELECT d1 FROM f WHERE d1 = 2")
        assert len(report.results) == 2
        assert report.results[0].to_rows() == [(4,)]

    def test_rows_requires_select_tail(self, service):
        report = service.execute("INSERT INTO f VALUES (7, 'q', 3.0)")
        with pytest.raises(TypeError):
            report.rows()

    def test_extended_select_through_resilient_runner(self, service):
        report = service.execute(
            "SELECT d1, Vpct(a) FROM f GROUP BY d1")
        assert report.kind == "read"
        # The generated plan ran several statements inside the overlay.
        assert report.statements_run > 1
        total = sum(row[-1] for row in report.rows())
        assert total == pytest.approx(1.0)

    def test_parallel_degree_observed(self, db):
        db.set_parallel_workers(2, row_threshold=1)
        with QueryService(db, workers=2) as service:
            report = service.execute(
                "SELECT d1, sum(a) FROM f GROUP BY d1")
            assert report.parallel_degree == 2


class TestAdmission:
    def test_queue_depth_rejects(self, db):
        with QueryService(db, workers=1, max_queue_depth=0,
                          session_inflight_cap=10) as service:
            release = threading.Event()
            blocker = service.scheduler._pool.submit(release.wait, 5)
            with service.create_session() as session:
                try:
                    session.submit("SELECT count(*) FROM f")
                    with pytest.raises(AdmissionRejected):
                        session.submit("SELECT count(*) FROM f")
                finally:
                    release.set()
                    blocker.result()

    def test_admitted_drains_to_zero(self, service):
        service.execute("SELECT count(*) FROM f")
        service.quiesce()
        assert service.scheduler.admitted == 0

    def test_empty_script_rejected(self, service):
        with service.create_session() as session:
            with pytest.raises(ServiceError):
                session.submit("   ")

    def test_syntax_errors_surface_at_submit(self, service):
        with service.create_session() as session:
            with pytest.raises(SQLSyntaxError):
                session.submit("SELEKT 1")

    def test_shutdown_rejects_new_work(self, db):
        service = QueryService(db, workers=1)
        session = service.create_session()
        service.shutdown()
        with pytest.raises(ServiceError):
            service.scheduler.submit(session, "SELECT 1")


class TestWriteSemantics:
    def test_failed_script_rolls_back_all_statements(self, service, db):
        fingerprint = db.catalog.fingerprint()
        with service.create_session() as session:
            future = session.submit(
                "INSERT INTO f VALUES (8, 'w', 1.0); "
                "CREATE TABLE side (x INT); "
                "SELECT nope FROM missing")
            with pytest.raises(Exception):
                future.result()
        assert db.catalog.fingerprint() == fingerprint
        assert not db.has_table("side")

    def test_writes_serialize(self, service, db):
        with service.create_session() as session:
            futures = [session.submit(
                f"INSERT INTO f VALUES ({10 + i}, 'w', 1.0)")
                for i in range(4)]
            for future in futures:
                future.result()
        assert db.query("SELECT count(*) FROM f") == [(8,)]

    def test_concurrent_reads_consistent_counts(self, service):
        # Each read sees some committed count, never a torn state.
        with service.create_session() as writer, \
                service.create_session() as reader:
            write_futures = [writer.submit(
                f"INSERT INTO f VALUES ({20 + i}, 'c', 1.0); "
                f"INSERT INTO f VALUES ({40 + i}, 'c', 1.0)")
                for i in range(3)]
            read_futures = [reader.submit("SELECT count(*) FROM f")
                            for _ in range(4)]
            for future in write_futures:
                future.result()
            counts = [f.result().rows()[0][0] for f in read_futures]
        # Scripts add rows two at a time from a base of 4: every
        # observed count must be an even committed total.
        assert all(count % 2 == 0 and 4 <= count <= 10
                   for count in counts)
