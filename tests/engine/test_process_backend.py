"""The multiprocess backend end to end: bit-identity against serial
execution, shared-memory lifecycle under injected faults and worker
death, metric/EXPLAIN/tracer surfaces, and the configuration knobs."""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api.database import Database
from repro.engine import faults, shm
from repro.engine.aggregates import compute_aggregate, count_star
from repro.engine.column import ColumnData
from repro.engine.executor import ExecutorOptions
from repro.engine.faults import FaultInjector, FaultSpec
from repro.engine.procpool import ProcessPool
from repro.engine.process_backend import run_grouped_aggregates
from repro.engine.types import SQLType
from repro.errors import TransientError, WorkerCrashError
from repro.service.session import SessionDefaults

SETUP = """
    CREATE TABLE t (d INT, c VARCHAR, a REAL, b INT);
    INSERT INTO t VALUES (1, 'x', 10.0, 3), (1, 'y', 30.0, NULL),
                         (2, 'x', 60.0, 1), (2, 'y', 0.25, 4),
                         (3, NULL, NULL, 2), (3, 'x', 5.5, NULL),
                         (4, 'z', -1.5, 7), (4, 'x', 2.25, 0)
"""

QUERIES = [
    "SELECT d, sum(a) FROM t GROUP BY d ORDER BY d",
    "SELECT d, avg(a), count(*) FROM t GROUP BY d ORDER BY d",
    "SELECT d, min(a), max(b) FROM t GROUP BY d ORDER BY d",
    "SELECT d, min(c), max(c) FROM t GROUP BY d ORDER BY d",
    "SELECT d, count(a), count(b) FROM t GROUP BY d ORDER BY d",
    "SELECT d, count(DISTINCT c) FROM t GROUP BY d ORDER BY d",
    "SELECT d, var(a), stdev(a) FROM t GROUP BY d ORDER BY d",
    "SELECT d, c, sum(b) FROM t GROUP BY d, c ORDER BY d, c",
]


def _process_db(**extra) -> Database:
    # morsel_rows=2 so even this 8-row table splits into multiple
    # morsels and actually crosses the process boundary.
    kwargs = dict(parallel_workers=4, parallel_row_threshold=1,
                  parallel_backend="process", morsel_rows=2)
    kwargs.update(extra)
    db = Database(**kwargs)
    db.execute_script(SETUP)
    return db


def _serial_db() -> Database:
    db = Database()
    db.execute_script(SETUP)
    return db


class TestBitIdentity:
    @pytest.mark.parametrize("sql", QUERIES)
    def test_matches_serial(self, sql):
        assert _process_db().query(sql) == _serial_db().query(sql)

    def test_real_sum_dtype_across_morsels(self):
        # The bincount dtype trap, morsel edition: an all-NULL morsel's
        # partial is int64; the merge buffer must come from the result
        # SQL type so 0.25 survives.
        db = Database(parallel_workers=2, parallel_row_threshold=1,
                      parallel_backend="process", morsel_rows=2)
        db.execute_script("""
            CREATE TABLE r (d INT, a REAL);
            INSERT INTO r VALUES (1, 10.0), (1, 0.25),
                                 (2, NULL), (2, NULL),
                                 (3, 1.5), (3, 2.5)
        """)
        assert db.query(
            "SELECT d, sum(a) FROM r GROUP BY d ORDER BY d") == [
            (1, 10.25), (2, None), (3, 4.0)]

    def test_vpct_plan_matches_serial(self):
        from repro.core.execute import run_resilient
        sql = "SELECT d, Vpct(a) FROM t GROUP BY d"
        rows = [run_resilient(db, sql).result.to_rows()
                for db in (_serial_db(), _process_db())]
        assert rows[0] == rows[1]

    def test_no_segments_survive_queries(self):
        db = _process_db()
        for sql in QUERIES:
            db.query(sql)
        assert shm.live_segment_names() == []


class TestRunGroupedAggregates:
    def test_mixed_eligible_and_local_items(self):
        rng = np.random.default_rng(5)
        n_rows, n_groups = 400, 9
        group_ids = rng.integers(0, n_groups, size=n_rows)
        group_ids[:n_groups] = np.arange(n_groups)
        group_ids = group_ids.astype(np.int64)
        reals = ColumnData(SQLType.REAL,
                           rng.normal(size=n_rows),
                           rng.random(n_rows) < 0.2)
        words = ColumnData.from_values(
            SQLType.VARCHAR,
            [None if i % 7 == 0 else f"w{i % 5}"
             for i in range(n_rows)])
        items = [("s", "sum", reals, False),
                 ("m", "min", words, False),     # VARCHAR -> local
                 ("c", "count", None, False),
                 ("d", "count", words, True)]    # DISTINCT -> codes
        out = run_grouped_aggregates(items, group_ids, n_groups,
                                     morsel_rows=32)
        assert set(out) == {"s", "m", "c", "d"}
        serial = {
            "s": compute_aggregate("sum", reals, False, group_ids,
                                   n_groups),
            "m": compute_aggregate("min", words, False, group_ids,
                                   n_groups),
            "c": count_star(group_ids, n_groups),
            "d": compute_aggregate("count", words, True, group_ids,
                                   n_groups),
        }
        for key, expected in serial.items():
            assert np.array_equal(out[key].values, expected.values)
            assert np.array_equal(out[key].nulls, expected.nulls)
        assert shm.live_segment_names() == []

    def test_small_input_runs_local(self):
        group_ids = np.array([0, 1, 0], dtype=np.int64)
        arg = ColumnData.from_values(SQLType.REAL, [1.0, 2.0, 3.0])
        out = run_grouped_aggregates([("s", "sum", arg, False)],
                                     group_ids, 2, morsel_rows=8192)
        assert out["s"].values.tolist() == [4.0, 2.0]
        assert shm.live_segment_names() == []


class TestFaultsAndDeath:
    def test_injected_fault_unlinks_segments(self):
        db = _process_db()
        injector = FaultInjector([FaultSpec("process-worker")])
        with faults.active(injector):
            with pytest.raises(TransientError):
                db.query("SELECT d, sum(a) FROM t GROUP BY d")
        assert injector.faults_raised == 1
        assert shm.live_segment_names() == []
        # The backend is fully usable again afterwards.
        assert db.query(
            "SELECT d, sum(a) FROM t GROUP BY d ORDER BY d") == \
            _serial_db().query(
                "SELECT d, sum(a) FROM t GROUP BY d ORDER BY d")

    def test_worker_death_raises_and_pool_recovers(self):
        pool = ProcessPool(size=2)
        try:
            with pytest.raises(WorkerCrashError):
                pool.run_batch(f"{__name__}:_die", [0])
            # _check_alive rebuilt the pool: the next batch succeeds.
            assert pool.run_batch(f"{__name__}:_echo",
                                  [1, 2, 3]) == [2, 3, 4]
        finally:
            pool.shutdown()
        assert shm.live_segment_names() == []

    def test_worker_task_error_propagates(self):
        pool = ProcessPool(size=2)
        try:
            with pytest.raises(ValueError, match="boom"):
                pool.run_batch(f"{__name__}:_boom", [0])
            assert pool.run_batch(f"{__name__}:_echo", [5]) == [6]
        finally:
            pool.shutdown()

    def test_shutdown_is_idempotent(self):
        """The atexit hook racing an explicit shutdown: the second
        call must find the closed pool and return without touching the
        already-closed queues or respawning workers."""
        pool = ProcessPool(size=2)
        assert pool.run_batch(f"{__name__}:_echo", [1]) == [2]
        pool.shutdown()
        assert pool._workers == []
        pool.shutdown()  # the atexit hook's call
        assert pool._workers == []

    def test_reset_on_closed_pool_does_not_restart(self):
        """A WorkerCrashError unwind racing teardown: _reset on a
        closed pool must tear down without rebuilding (restarting a
        pool nobody will use again leaks its worker processes)."""
        pool = ProcessPool(size=2)
        pool.shutdown()
        pool._reset()
        assert pool._workers == []

    def test_reset_while_finalizing_does_not_restart(self, monkeypatch):
        """During interpreter shutdown Process.start() raises, so a
        finalizing _reset (daemon worker reaped before our teardown)
        must not attempt a rebuild."""
        import sys

        pool = ProcessPool(size=2)
        try:
            monkeypatch.setattr(sys, "is_finalizing", lambda: True)
            pool._reset()
            assert pool._workers == []
        finally:
            monkeypatch.undo()
            pool.shutdown()


class TestObservability:
    def test_backend_metrics(self):
        db = _process_db()
        db.query("SELECT d, sum(a), count(*) FROM t GROUP BY d")
        samples = db.stats.registry.samples()
        tasks = [v for k, v in samples.items()
                 if k.startswith("engine_parallel_tasks_total")
                 and 'backend="process"' in k]
        assert tasks and tasks[0] > 0
        exported = [v for k, v in samples.items()
                    if k.startswith("engine_shm_bytes_exported")]
        assert exported and exported[0] > 0
        saturation = [v for k, v in samples.items()
                      if k.startswith("engine_worker_pool_saturation")]
        assert saturation and saturation[0] > 0

    def test_thread_backend_labels_its_tasks(self):
        db = Database(parallel_workers=4, parallel_row_threshold=1)
        db.execute_script(SETUP)
        db.query("SELECT d, sum(a) FROM t GROUP BY d")
        samples = db.stats.registry.samples()
        assert any(k.startswith("engine_parallel_tasks_total")
                   and 'backend="thread"' in k and v > 0
                   for k, v in samples.items())

    def test_explain_shows_backend_and_morsels(self):
        db = _process_db()
        lines = [row[0] for row in db.query(
            "EXPLAIN SELECT d, sum(a) FROM t GROUP BY d")]
        assert ("parallel: degree=4 backend=process "
                "(row threshold 1, morsel rows 2)") in lines

    def test_explain_silent_for_serial_backend(self):
        db = Database(parallel_workers=4, parallel_row_threshold=1,
                      parallel_backend="serial")
        db.execute_script(SETUP)
        lines = [row[0] for row in db.query(
            "EXPLAIN SELECT d, sum(a) FROM t GROUP BY d")]
        assert not [l for l in lines if l.startswith("parallel:")]

    def test_worker_spans_in_trace(self):
        db = _process_db(tracing=True)
        db.query("SELECT d, sum(a) FROM t GROUP BY d")
        dispatches = [s for root in db.tracer.roots()
                      for s in root.find(name="process-dispatch")]
        assert dispatches
        morsels = dispatches[0].children
        assert morsels and all(s.name == "process-morsel"
                               for s in morsels)
        assert all(s.attrs["worker_pid"] != os.getpid()
                   for s in morsels)


class TestConfiguration:
    def test_database_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="parallel_backend"):
            Database(parallel_backend="gpu")

    def test_database_rejects_bad_morsel_rows(self):
        with pytest.raises(ValueError, match="morsel_rows"):
            Database(morsel_rows=0)

    def test_set_parallel_backend(self):
        db = _serial_db()
        db.set_parallel_workers(4, row_threshold=1)
        db.set_parallel_backend("process", morsel_rows=2)
        assert db.query(
            "SELECT d, sum(a) FROM t GROUP BY d ORDER BY d") == \
            _serial_db().query(
                "SELECT d, sum(a) FROM t GROUP BY d ORDER BY d")
        with pytest.raises(ValueError):
            db.set_parallel_backend("quantum")

    def test_session_defaults_validation(self):
        with pytest.raises(ValueError, match="parallel_backend"):
            SessionDefaults(parallel_backend="gpu")
        with pytest.raises(ValueError, match="morsel_rows"):
            SessionDefaults(morsel_rows=0)

    def test_session_defaults_resolve(self):
        base = ExecutorOptions()
        resolved = SessionDefaults(parallel_backend="process",
                                   morsel_rows=16).resolve(base)
        assert resolved.parallel_backend == "process"
        assert resolved.morsel_rows == 16
        assert base.parallel_backend == "thread"
        untouched = SessionDefaults().resolve(base)
        assert untouched.parallel_backend == "thread"


# ----------------------------------------------------------------------
# Worker targets for the pool tests (resolved by name in forked
# children, which inherit this module via sys.modules).
# ----------------------------------------------------------------------
def _die(payload):  # pragma: no cover - runs in a worker process
    os._exit(1)


def _echo(payload):  # pragma: no cover - runs in a worker process
    return payload + 1


def _boom(payload):  # pragma: no cover - runs in a worker process
    raise ValueError("boom")
