"""Property-based invariants of percentage aggregations on random fact
tables:

* the Vpct values of one totals-group sum to 1 (when the group total
  is positive and no NULL percentages occur);
* Hpct rows sum to 1 under the same conditions;
* every evaluation strategy agrees with every other;
* the OLAP-extensions baseline returns the same answer set.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import Database
from repro.core import (HorizontalAggStrategy, HorizontalStrategy,
                        VerticalStrategy, run_percentage_query)
from repro.olap import run_olap_percentage_query

#: Strictly positive measures keep group totals nonzero, which makes
#: the sums-to-one invariants unconditional.
POSITIVE_ROWS = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3),
              st.integers(1, 50)),
    min_size=1, max_size=30)

MIXED_ROWS = st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3),
              st.one_of(st.none(), st.integers(-20, 20))),
    min_size=1, max_size=30)


def load(rows):
    db = Database()
    db.execute("CREATE TABLE f (g INT, d INT, m REAL)")
    values = ", ".join(f"({g}, {d}, {'NULL' if m is None else m})"
                       for g, d, m in rows)
    db.execute(f"INSERT INTO f VALUES {values}")
    return db


VQUERY = "SELECT g, d, Vpct(m BY d) FROM f GROUP BY g, d"
HQUERY = "SELECT g, Hpct(m BY d) FROM f GROUP BY g"


@given(POSITIVE_ROWS)
@settings(max_examples=50, deadline=None)
def test_vpct_groups_sum_to_one(rows):
    db = load(rows)
    result = run_percentage_query(db, VQUERY)
    sums = {}
    for g, _, pct in result.to_rows():
        sums[g] = sums.get(g, 0.0) + pct
    for total in sums.values():
        assert math.isclose(total, 1.0)


@given(POSITIVE_ROWS)
@settings(max_examples=50, deadline=None)
def test_hpct_rows_sum_to_one(rows):
    db = load(rows)
    result = run_percentage_query(db, HQUERY)
    names = result.column_names()
    for row in result.to_rows():
        total = sum(v for k, v in zip(names, row) if k != "g")
        assert math.isclose(total, 1.0)


@given(MIXED_ROWS)
@settings(max_examples=40, deadline=None)
def test_vertical_strategies_agree(rows):
    db = load(rows)
    baseline = run_percentage_query(db, VQUERY,
                                    VerticalStrategy()).to_rows()
    for strategy in (VerticalStrategy(fj_from_fk=False),
                     VerticalStrategy(use_update=True),
                     VerticalStrategy(single_statement=True)):
        other = run_percentage_query(db, VQUERY, strategy).to_rows()
        assert other == pytest.approx(baseline, nan_ok=True)


@given(MIXED_ROWS)
@settings(max_examples=40, deadline=None)
def test_horizontal_strategies_agree(rows):
    db = load(rows)
    sql = "SELECT g, sum(m BY d) FROM f GROUP BY g"
    baseline = None
    for strategy in (HorizontalStrategy(source="F"),
                     HorizontalStrategy(source="FV"),
                     HorizontalAggStrategy(source="F"),
                     HorizontalAggStrategy(source="FV")):
        result = run_percentage_query(db, sql, strategy)
        rows_out = result.to_rows()
        if baseline is None:
            baseline = rows_out
        else:
            assert len(rows_out) == len(baseline)
            for a, b in zip(rows_out, baseline):
                assert a == pytest.approx(b, nan_ok=True)


@given(MIXED_ROWS)
@settings(max_examples=40, deadline=None)
def test_olap_baseline_same_answer_set(rows):
    db = load(rows)
    vpct = run_percentage_query(db, VQUERY).to_rows()
    olap = run_olap_percentage_query(db, VQUERY).to_rows()
    assert len(vpct) == len(olap)
    for a, b in zip(vpct, olap):
        assert a == pytest.approx(b, nan_ok=True)


@given(POSITIVE_ROWS)
@settings(max_examples=40, deadline=None)
def test_hpct_transposes_vpct(rows):
    db = load(rows)
    vertical = run_percentage_query(db, VQUERY)
    horizontal = run_percentage_query(db, HQUERY)
    names = horizontal.column_names()
    cells = {}
    for row in horizontal.to_rows():
        record = dict(zip(names, row))
        for name in names:
            if name != "g":
                cells[(record["g"], name)] = record[name]
    for g, d, pct in vertical.to_rows():
        assert math.isclose(cells[(g, f"c{d}")], pct,
                            rel_tol=1e-9, abs_tol=1e-12)


@given(MIXED_ROWS)
@settings(max_examples=30, deadline=None)
def test_missing_rows_post_makes_groups_uniform(rows):
    assume(any(m is not None for _, _, m in rows))
    db = load(rows)
    result = run_percentage_query(
        db, VQUERY, VerticalStrategy(missing_rows="post"))
    distinct_days = db.query("SELECT count(DISTINCT d) FROM f")[0][0]
    counts = {}
    for g, *_ in result.to_rows():
        counts[g] = counts.get(g, 0) + 1
    assert set(counts.values()) == {distinct_days}
