"""Shared fixtures: small fact tables from the papers' examples."""

from __future__ import annotations

import pytest

from repro import Database

#: The SIGMOD paper's Table 1 example fact table.
PAPER_SALES_ROWS = [
    (1, "CA", "San Francisco", 13.0),
    (2, "CA", "San Francisco", 3.0),
    (3, "CA", "San Francisco", 67.0),
    (4, "CA", "Los Angeles", 23.0),
    (5, "TX", "Houston", 5.0),
    (6, "TX", "Houston", 35.0),
    (7, "TX", "Houston", 10.0),
    (8, "TX", "Houston", 14.0),
    (9, "TX", "Dallas", 53.0),
    (10, "TX", "Dallas", 32.0),
]


@pytest.fixture
def db() -> Database:
    return Database(keep_history=True)


@pytest.fixture
def sales_db(db: Database) -> Database:
    """A database holding the paper's Table 1 sales example."""
    db.load_table(
        "sales",
        [("rid", "int"), ("state", "varchar"), ("city", "varchar"),
         ("salesamt", "real")],
        PAPER_SALES_ROWS, primary_key=["rid"])
    return db


@pytest.fixture
def store_db(db: Database) -> Database:
    """A database matching the paper's Table 3 horizontal example:
    three stores with sales per day of week (store 4 has no Monday
    sales -- the 0% cell)."""
    data = {
        2: {"Mo": 175, "Tu": 150, "We": 200, "Th": 225, "Fr": 400,
            "Sa": 600, "Su": 750},
        4: {"Tu": 360, "We": 360, "Th": 360, "Fr": 720, "Sa": 800,
            "Su": 1400},
        7: {"Mo": 128, "Tu": 128, "We": 64, "Th": 64, "Fr": 128,
            "Sa": 560, "Su": 528},
    }
    rows = []
    rid = 0
    for store, per_day in data.items():
        for day, amount in per_day.items():
            rid += 1
            rows.append((rid, store, day, float(amount)))
    db.load_table(
        "sales",
        [("rid", "int"), ("store", "int"), ("dweek", "varchar"),
         ("salesamt", "real")],
        rows, primary_key=["rid"])
    return db


@pytest.fixture
def employee_db(db: Database) -> Database:
    """The companion paper's four-employee example (its Table 2)."""
    rows = [
        (1, "M", "Single", 30000.0),
        (2, "F", "Single", 50000.0),
        (3, "F", "Married", 40000.0),
        (4, "M", "Single", 45000.0),
    ]
    db.load_table(
        "employee",
        [("employeeid", "int"), ("gender", "varchar"),
         ("maritalstatus", "varchar"), ("salary", "real")],
        rows, primary_key=["employeeid"])
    return db
