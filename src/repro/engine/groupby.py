"""Grouping machinery: vectorized factorization of key columns.

Everything that needs "rows with equal keys" -- GROUP BY, DISTINCT,
window partitions, hash joins -- goes through :func:`factorize`:

1. each key column is *encoded* to dense integer codes (NULL gets its
   own code, so SQL GROUP BY semantics of NULLs-compare-equal hold);
2. multi-column keys are combined either by mixed-radix arithmetic (the
   fast path, when the code space fits in int64) or by lexicographic
   ``np.unique(axis=0)``;
3. the result is a :class:`Grouping`: one group id per row, the group
   count, and per-column representative values for each group.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.engine import cancel, faults
from repro.engine.column import ColumnData
from repro.engine.encoding_cache import EncodingCache
from repro.engine.types import SQLType


@dataclass
class EncodedColumn:
    """One key column reduced to dense codes.

    ``codes[i]`` is 0 when row ``i`` is NULL, otherwise
    ``1 + rank of the value`` in ``uniques`` (which is sorted).
    ``cardinality`` = ``len(uniques) + 1`` (the NULL slot).
    """

    codes: np.ndarray
    uniques: np.ndarray
    sql_type: SQLType

    #: Instances are shared through the encoding cache; treat ``codes``
    #: and ``uniques`` as immutable.

    @property
    def cardinality(self) -> int:
        return len(self.uniques) + 1

    def decode(self, codes: np.ndarray) -> ColumnData:
        """Map codes back to a value column (code 0 -> NULL)."""
        nulls = codes == 0
        safe = np.where(nulls, 1, codes) - 1
        if len(self.uniques):
            values = self.uniques[safe]
        else:
            values = np.full(len(codes), 0, dtype=object)
        values = np.asarray(values, dtype=self.sql_type.numpy_dtype)
        if nulls.any():
            values = values.copy()
        return ColumnData(self.sql_type, values, nulls)


def encode_column(col: ColumnData,
                  cache: Optional[EncodingCache] = None) -> EncodedColumn:
    """Encode one column to dense integer codes (NULL -> 0).

    ``uniques`` holds exactly the distinct **non-NULL** values: NULL
    lanes are excluded before ``np.unique`` rather than substituted
    with a filler, so a NULL-bearing VARCHAR column no longer grows a
    spurious ``""`` dictionary entry (and numeric fillers no longer
    inflate ``cardinality``).

    When ``cache`` is given and the column carries a base-table
    ``cache_token``, the encoding is served from / stored into the
    dictionary-encoding cache.
    """
    token = col.cache_token
    if cache is not None and token is not None:
        cached = cache.get(token)
        if cached is not None:
            return cached
    encoded = _encode_values(col)
    if cache is not None and token is not None:
        cache.put(token, encoded)
    return encoded


def _encode_values(col: ColumnData) -> EncodedColumn:
    n = len(col)
    if n == 0:
        return EncodedColumn(np.empty(0, dtype=np.int64),
                             np.empty(0, dtype=col.sql_type.numpy_dtype),
                             col.sql_type)
    if col.nulls.any():
        valid = ~col.nulls
        present = col.values[valid]
        uniques = np.unique(present)
        codes = np.zeros(n, dtype=np.int64)
        if len(uniques):
            codes[valid] = np.searchsorted(uniques, present) + 1
        return EncodedColumn(codes, uniques, col.sql_type)
    uniques, inverse = np.unique(col.values, return_inverse=True)
    codes = inverse.astype(np.int64) + 1
    return EncodedColumn(codes, uniques, col.sql_type)


@dataclass
class Grouping:
    """The result of factorizing rows by a key-column list."""

    group_ids: np.ndarray          # int64, one per input row
    n_groups: int
    key_codes: np.ndarray          # (n_groups, n_keys) codes per group
    encodings: list[EncodedColumn]

    def key_column(self, position: int) -> ColumnData:
        """The representative values of key column ``position``, one row
        per group."""
        return self.encodings[position].decode(self.key_codes[:, position])

    def key_columns(self) -> list[ColumnData]:
        return [self.key_column(i) for i in range(len(self.encodings))]


#: Mixed-radix combination is used only while the combined code space
#: fits comfortably in int64.
_MAX_CODE_SPACE = 2 ** 62


def factorize(columns: list[ColumnData], n_rows: int,
              cache: Optional[EncodingCache] = None) -> Grouping:
    """Group rows by the tuple of ``columns`` (possibly empty).

    With no key columns every row lands in one global group, which is
    exactly SQL's "aggregation without GROUP BY".  ``cache`` lets
    base-table key columns reuse dictionary encodings across plan
    steps and queries.
    """
    cancel.checkpoint("group-by")
    faults.fire("group-by")
    if not columns:
        group_ids = np.zeros(n_rows, dtype=np.int64)
        return Grouping(group_ids, 1 if n_rows >= 0 else 0,
                        np.empty((1, 0), dtype=np.int64), [])

    encodings = [encode_column(c, cache) for c in columns]
    if len(encodings) == 1:
        return _factorize_single(encodings[0])

    code_space = 1
    for enc in encodings:
        code_space *= enc.cardinality
        if code_space > _MAX_CODE_SPACE:
            break
    if code_space <= _MAX_CODE_SPACE:
        return _factorize_radix(encodings)
    return _factorize_lex(encodings)


def _factorize_single(enc: EncodedColumn) -> Grouping:
    present, group_ids = np.unique(enc.codes, return_inverse=True)
    return Grouping(group_ids.astype(np.int64), len(present),
                    present.reshape(-1, 1), [enc])


def _factorize_radix(encodings: list[EncodedColumn]) -> Grouping:
    """Combine per-column codes into one int64 with mixed radix."""
    combined = np.zeros(len(encodings[0].codes), dtype=np.int64)
    for enc in encodings:
        combined *= enc.cardinality
        combined += enc.codes
    present, group_ids = np.unique(combined, return_inverse=True)
    key_codes = np.empty((len(present), len(encodings)), dtype=np.int64)
    remaining = present.copy()
    for position in range(len(encodings) - 1, -1, -1):
        radix = encodings[position].cardinality
        key_codes[:, position] = remaining % radix
        remaining //= radix
    return Grouping(group_ids.astype(np.int64), len(present), key_codes,
                    encodings)


def _factorize_lex(encodings: list[EncodedColumn]) -> Grouping:
    """Fallback for huge code spaces: unique over stacked code rows."""
    matrix = np.stack([enc.codes for enc in encodings], axis=1)
    present, group_ids = np.unique(matrix, axis=0, return_inverse=True)
    return Grouping(group_ids.astype(np.int64), len(present), present,
                    encodings)


# ----------------------------------------------------------------------
# Partition-parallel factorization (the service's intra-query
# parallelism)
# ----------------------------------------------------------------------

@dataclass
class GroupPartition:
    """One hash partition of the input rows, with its local grouping.

    Partitioning is on the combined key code, so every global group's
    rows live wholly in one partition; ``global_groups[local_id]``
    maps a partition-local group id to the global one.
    """

    rows: np.ndarray            # original row positions, ascending
    group_ids: np.ndarray       # partition-local id per row
    n_groups: int               # partition-local group count
    global_groups: np.ndarray   # local id -> global id


@dataclass
class PartitionedGrouping:
    """A :class:`Grouping` plus the partition layout that produced it.

    ``grouping`` is bit-identical to what serial :func:`factorize`
    returns for the same input: global group ids are ranks in the
    sorted set of combined key codes either way.  The partitions let
    aggregate evaluation fan out and merge by pure scatter (see
    :func:`repro.engine.aggregates.compute_aggregate_partitioned`).
    """

    grouping: Grouping
    partitions: list[GroupPartition]

    @property
    def degree(self) -> int:
        return len(self.partitions)


def factorize_partitioned(columns: list[ColumnData], n_rows: int,
                          cache: Optional[EncodingCache] = None,
                          degree: int = 1
                          ) -> Optional[PartitionedGrouping]:
    """Parallel :func:`factorize` over ``degree`` hash partitions.

    Returns ``None`` when the input is not eligible (no key columns,
    empty input, degree <= 1, or a code space too large for mixed
    radix) -- the caller then runs serial :func:`factorize`.  The
    ``group-by`` fault site fires exactly once per factorization
    either way: here only after eligibility is decided, so fault-sweep
    hit indexes match serial runs.
    """
    if degree <= 1 or not columns or n_rows <= 0:
        return None
    encodings = [encode_column(c, cache) for c in columns]
    code_space = 1
    for enc in encodings:
        code_space *= enc.cardinality
        if code_space > _MAX_CODE_SPACE:
            return None  # lex fallback stays serial
    cancel.checkpoint("group-by")
    faults.fire("group-by")

    combined = np.zeros(n_rows, dtype=np.int64)
    for enc in encodings:
        combined *= enc.cardinality
        combined += enc.codes

    from repro.core.partitioning import hash_partition, map_partitions
    degree = min(degree, n_rows)
    # Empty partitions (fewer distinct residues than workers) carry no
    # groups; dropping them saves pool round-trips and keeps merge
    # prototypes meaningful (an empty np.bincount reverts to int64
    # regardless of its weights dtype).
    partition_rows = [rows for rows in hash_partition(combined, degree)
                      if len(rows)]

    def factorize_partition(rows: np.ndarray):
        present, local = np.unique(combined[rows], return_inverse=True)
        return present, local.astype(np.int64)

    results = map_partitions(factorize_partition, partition_rows)

    # Partitions own disjoint residue classes of the combined code, so
    # the sorted union of their uniques is exactly the serial
    # np.unique(combined) -- global ids are ranks in that order.
    present = np.unique(np.concatenate([p for p, _ in results]))
    group_ids = np.empty(n_rows, dtype=np.int64)
    partitions: list[GroupPartition] = []
    for rows, (part_present, local) in zip(partition_rows, results):
        global_groups = np.searchsorted(present, part_present)
        group_ids[rows] = global_groups[local]
        partitions.append(GroupPartition(
            rows=rows, group_ids=local, n_groups=len(part_present),
            global_groups=global_groups))

    key_codes = np.empty((len(present), len(encodings)), dtype=np.int64)
    remaining = present.copy()
    for position in range(len(encodings) - 1, -1, -1):
        radix = encodings[position].cardinality
        key_codes[:, position] = remaining % radix
        remaining //= radix
    grouping = Grouping(group_ids, len(present), key_codes, encodings)
    return PartitionedGrouping(grouping, partitions)


def distinct_indices(columns: list[ColumnData], n_rows: int,
                     cache: Optional[EncodingCache] = None) -> np.ndarray:
    """Positions of the first row of each distinct key combination, in
    first-appearance order (stable DISTINCT)."""
    grouping = factorize(columns, n_rows, cache)
    if n_rows == 0:
        return np.empty(0, dtype=np.int64)
    # np.unique(return_index=True) yields the first occurrence of each
    # group id; sorting those positions restores appearance order.
    _, firsts = np.unique(grouping.group_ids, return_index=True)
    return np.sort(firsts.astype(np.int64))
