"""A fluent builder for percentage queries.

For callers who prefer constructing queries programmatically over
writing the extended SQL syntax::

    from repro.api.percentage import PercentageQueryBuilder

    result = (PercentageQueryBuilder(db)
              .from_table("sales")
              .group_by("state", "city")
              .vpct("salesAmt", by=["city"])
              .run())

The builder assembles the extended-syntax SQL text and hands it to
:func:`repro.core.run_percentage_query`, so both entry points share one
validation and generation pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.api.database import Database
from repro.engine.table import Table
from repro.errors import PercentageQueryError
from repro.sql.formatter import quote_ident


@dataclass
class _BuilderTerm:
    func: str
    argument: str
    by: tuple[str, ...]
    default: Optional[Any] = None
    distinct: bool = False
    alias: Optional[str] = None

    def render(self) -> str:
        inner = "DISTINCT " if self.distinct else ""
        inner += self.argument
        if self.by:
            inner += " BY " + ", ".join(quote_ident(c) for c in self.by)
        if self.default is not None:
            inner += f" DEFAULT {_literal(self.default)}"
        text = f"{self.func}({inner})"
        if self.alias:
            text += f" AS {quote_ident(self.alias)}"
        return text


def _literal(value: Any) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


@dataclass
class PercentageQueryBuilder:
    """Composable percentage-query construction."""

    db: Database
    _table: str = ""
    _group_by: tuple[str, ...] = ()
    _terms: list[_BuilderTerm] = field(default_factory=list)
    _where: Optional[str] = None

    # ------------------------------------------------------------------
    def from_table(self, name: str) -> "PercentageQueryBuilder":
        self._table = name
        return self

    def group_by(self, *columns: str) -> "PercentageQueryBuilder":
        self._group_by = tuple(columns)
        return self

    def where(self, condition: str) -> "PercentageQueryBuilder":
        """A raw SQL filter on the fact table."""
        self._where = condition
        return self

    def vpct(self, argument: str, by: Sequence[str] = (),
             alias: Optional[str] = None) -> "PercentageQueryBuilder":
        """Add a vertical percentage term."""
        self._terms.append(_BuilderTerm("Vpct", argument, tuple(by),
                                        alias=alias))
        return self

    def hpct(self, argument: str, by: Sequence[str],
             alias: Optional[str] = None) -> "PercentageQueryBuilder":
        """Add a horizontal percentage term."""
        self._terms.append(_BuilderTerm("Hpct", argument, tuple(by),
                                        alias=alias))
        return self

    def hagg(self, func: str, argument: str, by: Sequence[str],
             default: Optional[Any] = None, distinct: bool = False,
             alias: Optional[str] = None) -> "PercentageQueryBuilder":
        """Add a generalized horizontal aggregate term."""
        self._terms.append(_BuilderTerm(func, argument, tuple(by),
                                        default=default,
                                        distinct=distinct, alias=alias))
        return self

    def aggregate(self, func: str, argument: str = "*",
                  distinct: bool = False,
                  alias: Optional[str] = None) -> "PercentageQueryBuilder":
        """Add a plain vertical aggregate term."""
        self._terms.append(_BuilderTerm(func, argument, (),
                                        distinct=distinct, alias=alias))
        return self

    # ------------------------------------------------------------------
    def sql(self) -> str:
        """The extended-syntax SQL this builder represents."""
        if not self._table:
            raise PercentageQueryError("from_table() was never called")
        if not self._terms:
            raise PercentageQueryError("add at least one term")
        items = [quote_ident(c) for c in self._group_by]
        items += [t.render() for t in self._terms]
        text = ("SELECT " + ", ".join(items)
                + f" FROM {quote_ident(self._table)}")
        if self._where:
            text += f" WHERE {self._where}"
        if self._group_by:
            text += " GROUP BY " + ", ".join(quote_ident(c)
                                             for c in self._group_by)
        return text

    def plan(self, strategy=None):
        """Generate (but do not run) the evaluation plan."""
        from repro.core import generate_plan
        return generate_plan(self.db, self.sql(), strategy)

    def run(self, strategy=None) -> Table:
        """Generate, execute and return the result table."""
        from repro.core import run_percentage_query
        return run_percentage_query(self.db, self.sql(), strategy)
