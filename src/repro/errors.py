"""Exception hierarchy for the repro package.

Every error raised by the engine, the SQL front end, or the percentage
query code generator derives from :class:`ReproError`, so callers can
catch one base class.  The split mirrors where in the stack the problem
was detected:

* :class:`SQLSyntaxError` -- the SQL text could not be tokenized/parsed.
* :class:`PlanningError` -- the statement parsed but cannot be planned
  (unknown table/column, ambiguous reference, bad aggregate usage...).
* :class:`ExecutionError` -- a runtime failure while executing a plan.
* :class:`CatalogError` -- catalog violations (duplicate table, DBMS
  limits such as the maximum column count exceeded...).
* :class:`PercentageQueryError` -- a percentage query violates the usage
  rules of Vpct()/Hpct()/Hagg() defined in the paper (Section 3).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SQLSyntaxError(ReproError):
    """The SQL text is malformed.

    Carries the position (1-based line and column) where tokenization or
    parsing failed, when known.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)


class PlanningError(ReproError):
    """The statement is syntactically valid but cannot be planned."""


class ExecutionError(ReproError):
    """A failure occurred while executing a plan."""


class CatalogError(ReproError):
    """A catalog invariant or DBMS limit was violated."""


class TypeMismatchError(PlanningError):
    """An expression combines values of incompatible SQL types."""


class PercentageQueryError(ReproError):
    """A percentage query violates the paper's usage rules."""
