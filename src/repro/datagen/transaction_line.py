"""The companion paper's ``transactionLine`` table.

"Table transactionLine had columns deptId(10), subdeptId(100),
itemId(1000), yearNo(4), monthNo(12), dayOfWeekNo(7), regionId(4),
stateId(10), cityId(20) and storeId(30) ... generated with
n = 1'000,000 rows and n = 2'000,000 rows" (DMKD Section 4.1).

Measures ``itemQty``, ``costAmt`` and ``salesAmt`` are included as the
paper's Section 2.1 describes.
"""

from __future__ import annotations

import numpy as np

from repro.api.database import Database
from repro.datagen import distributions as dist
from repro.engine.table import Table

#: The companion paper's two scales.
PAPER_N_SMALL = 1_000_000
PAPER_N_LARGE = 2_000_000

CARDINALITIES = {"deptid": 10, "subdeptid": 100, "itemid": 1000,
                 "yearno": 4, "monthno": 12, "dayofweekno": 7,
                 "regionid": 4, "stateid": 10, "cityid": 20,
                 "storeid": 30}


def load_transaction_line(db: Database, n_rows: int = 100_000,
                          seed: int = 20040614,
                          name: str = "transactionline",
                          replace: bool = True) -> Table:
    """Generate and load transactionLine (default 1/10 of the small
    paper scale)."""
    rng = np.random.default_rng(seed)
    data = {"transactionid": dist.sequence(n_rows)}
    for column, cardinality in CARDINALITIES.items():
        data[column] = dist.uniform_dimension(rng, n_rows, cardinality)
    qty = dist.uniform_dimension(rng, n_rows, 10)
    cost = np.round(dist.uniform_measure(rng, n_rows, 0.5, 50.0), 2)
    data["itemqty"] = qty
    data["costamt"] = np.round(cost * qty, 2)
    data["salesamt"] = np.round(cost * qty * 1.25, 2)
    if replace:
        db.drop_table(name, if_exists=True)
    columns = [("transactionid", "int")]
    columns += [(c, "int") for c in CARDINALITIES]
    columns += [("itemqty", "int"), ("costamt", "real"),
                ("salesamt", "real")]
    return db.load_table(name, columns, data,
                         primary_key=["transactionid"])
