"""The percentage-query model: parsing the extended syntax into a
structured description.

A percentage query (Section 3 of the paper) is a SELECT over a fact
table ``F`` whose select list mixes

* dimension columns (which must be grouping columns),
* ``Vpct(A BY Dj+1, ..., Dk)`` vertical percentage terms,
* ``Hpct(A BY Dj+1, ..., Dk)`` horizontal percentage terms,
* generalized horizontal aggregates ``agg(A BY ... [DEFAULT d])``
  (the companion paper's ``Hagg``), and
* plain vertical aggregates (``sum(A)``, ``count(*)``, ...).

The model keeps the query in a normalized shape the code generators
consume; validation of the papers' usage rules lives in
:mod:`repro.core.validate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import PercentageQueryError
from repro.sql import ast
from repro.sql.formatter import format_expr
from repro.sql.parser import parse_statement


#: Term kinds.
VPCT = "vpct"
HPCT = "hpct"
HAGG = "hagg"          # standard aggregate with a BY clause
VERTICAL = "vertical"  # plain standard aggregate (no BY)


@dataclass
class AggregateTerm:
    """One aggregate item of the select list."""

    kind: str                       # VPCT | HPCT | HAGG | VERTICAL
    func: str                       # vpct/hpct or sum/count/avg/min/max
    argument: Optional[ast.Expr]    # A (None only for count(*))
    by_columns: tuple[str, ...]     # sub-grouping columns (lower-case)
    default: Optional[Any] = None   # DEFAULT literal value, if given
    distinct: bool = False
    alias: Optional[str] = None
    position: int = 0               # index within the select list

    @property
    def is_horizontal(self) -> bool:
        return self.kind in (HPCT, HAGG)

    def argument_sql(self) -> str:
        if self.argument is None:
            return "*"
        return format_expr(self.argument)

    def label(self) -> str:
        """A short human-readable label for naming result columns."""
        if self.alias:
            return self.alias
        if self.argument is None:
            return f"{self.func}_star"
        arg = self.argument_sql().replace(" ", "")
        safe = "".join(ch if ch.isalnum() else "_" for ch in arg)
        return f"{self.func}_{safe}" if self.kind != VPCT else safe


@dataclass
class PercentageQuery:
    """A normalized percentage query.

    Attributes:
        table: the fact table ``F`` (after view materialization, when
            the original FROM clause joined several tables).
        group_by: the GROUP BY columns, lower-cased, in query order.
        dimensions: the plain dimension columns of the select list (in
            order), each of which must be a grouping column.
        terms: the aggregate terms, in select-list order.
        where: an optional pass-through filter on ``F``.
        source_select: the original FROM/WHERE select when ``F`` must
            be materialized from a join first (None for plain tables).
        sql: the original statement text, for diagnostics.
    """

    table: str
    group_by: tuple[str, ...]
    dimensions: tuple[str, ...]
    terms: list[AggregateTerm]
    where: Optional[ast.Expr] = None
    source_select: Optional[ast.Select] = None
    sql: str = ""

    # Convenience accessors ------------------------------------------------
    def vertical_pct_terms(self) -> list[AggregateTerm]:
        return [t for t in self.terms if t.kind == VPCT]

    def horizontal_terms(self) -> list[AggregateTerm]:
        return [t for t in self.terms if t.is_horizontal]

    def plain_terms(self) -> list[AggregateTerm]:
        return [t for t in self.terms if t.kind == VERTICAL]

    @property
    def has_vertical_pct(self) -> bool:
        return any(t.kind == VPCT for t in self.terms)

    @property
    def has_horizontal(self) -> bool:
        return any(t.is_horizontal for t in self.terms)


def parse_percentage_query(sql: str) -> PercentageQuery:
    """Parse extended-syntax SQL into a :class:`PercentageQuery`.

    Raises :class:`PercentageQueryError` when the statement is not a
    percentage query or violates structural expectations; the usage
    rules proper are checked by :func:`repro.core.validate.validate`.
    """
    try:
        statement = parse_statement(sql)
    except Exception as exc:
        raise PercentageQueryError(f"cannot parse query: {exc}") from exc
    if not isinstance(statement, ast.Select):
        raise PercentageQueryError("a percentage query must be a SELECT")
    return build_percentage_query(statement, sql)


def build_percentage_query(select: ast.Select,
                           sql: str = "") -> PercentageQuery:
    """Build the model from a parsed SELECT."""
    if select.from_ is None:
        raise PercentageQueryError(
            "a percentage query requires a FROM clause")
    if select.distinct:
        raise PercentageQueryError(
            "DISTINCT cannot be combined with percentage aggregations")
    if select.having is not None or select.order_by or \
            select.limit is not None:
        raise PercentageQueryError(
            "HAVING/ORDER BY/LIMIT are not supported in percentage "
            "queries; apply them to the result table")

    table, source_select, where = _resolve_source(select)
    group_by = _resolve_group_by(select)

    dimensions: list[str] = []
    terms: list[AggregateTerm] = []
    for position, item in enumerate(select.items):
        expr = item.expr
        if isinstance(expr, ast.ColumnRef):
            dimensions.append(expr.name.lower())
            continue
        if isinstance(expr, ast.FuncCall):
            terms.append(_build_term(expr, item.alias, position))
            continue
        raise PercentageQueryError(
            f"select item {format_expr(expr)!r} must be a grouping "
            f"column or an aggregate call")
    if not terms:
        raise PercentageQueryError(
            "a percentage query needs at least one aggregate term")
    return PercentageQuery(table=table, group_by=group_by,
                           dimensions=tuple(dimensions), terms=terms,
                           where=where, source_select=source_select,
                           sql=sql)


def _resolve_source(select: ast.Select
                    ) -> tuple[str, Optional[ast.Select], Optional[ast.Expr]]:
    """F is either a plain table (WHERE passed through) or a join that
    the generator must materialize first (DMKD Section 2: "F represents
    a temporary table or a view based on some complex SQL query")."""
    from_ = select.from_
    if not from_.joins and isinstance(from_.first, ast.TableRef):
        return from_.first.name, None, select.where
    # Multi-source FROM: keep the whole SELECT shell for the
    # materialization step (the generator projects the needed columns).
    return "", select, None


def _resolve_group_by(select: ast.Select) -> tuple[str, ...]:
    columns: list[str] = []
    for expr in select.group_by:
        if isinstance(expr, ast.ColumnRef):
            columns.append(expr.name.lower())
        elif isinstance(expr, ast.Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(select.items):
                raise PercentageQueryError(
                    f"GROUP BY position {position} is out of range")
            target = select.items[position - 1].expr
            if not isinstance(target, ast.ColumnRef):
                raise PercentageQueryError(
                    f"GROUP BY position {position} must refer to a "
                    f"dimension column")
            columns.append(target.name.lower())
        else:
            raise PercentageQueryError(
                "GROUP BY must list dimension columns (or positions)")
    return tuple(columns)


def _build_term(call: ast.FuncCall, alias: Optional[str],
                position: int) -> AggregateTerm:
    by_columns = tuple(c.name.lower() for c in call.by_columns)
    default = None
    if call.default is not None:
        if not isinstance(call.default, ast.Literal):
            raise PercentageQueryError(
                "DEFAULT must be a literal value")
        default = call.default.value

    if call.name in ("vpct", "hpct"):
        if len(call.args) != 1 or isinstance(call.args[0], ast.Star):
            raise PercentageQueryError(
                f"{call.name}() requires exactly one expression "
                f"argument")
        if call.distinct:
            raise PercentageQueryError(
                f"{call.name}() does not accept DISTINCT")
        kind = VPCT if call.name == "vpct" else HPCT
        return AggregateTerm(kind=kind, func=call.name,
                             argument=call.args[0],
                             by_columns=by_columns, default=default,
                             alias=alias, position=position)

    if call.name not in ast.AGGREGATE_NAMES:
        raise PercentageQueryError(
            f"unknown aggregate function {call.name}() in a "
            f"percentage query")
    argument: Optional[ast.Expr]
    if call.args and isinstance(call.args[0], ast.Star):
        if call.name != "count":
            raise PercentageQueryError(
                f"{call.name}(*) is not valid; only count(*)")
        argument = None
    elif len(call.args) == 1:
        argument = call.args[0]
    else:
        raise PercentageQueryError(
            f"{call.name}() takes exactly one argument")
    kind = HAGG if by_columns else VERTICAL
    return AggregateTerm(kind=kind, func=call.name, argument=argument,
                         by_columns=by_columns, default=default,
                         distinct=call.distinct, alias=alias,
                         position=position)
