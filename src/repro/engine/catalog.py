"""The catalog: named tables, their indexes, and DBMS limits.

The catalog enforces the limits the paper calls out as practical issues
for horizontal aggregations: the maximum number of columns per table
and the maximum identifier length (DMKD Section 3.6).  Both are
configurable so tests and the vertical-partitioning machinery can
exercise the failure paths at small sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.engine.encoding_cache import (DEFAULT_ENCODING_CACHE_BYTES,
                                         EncodingCache)
from repro.engine.index import HashIndex
from repro.engine.schema import (DEFAULT_MAX_COLUMNS,
                                 DEFAULT_MAX_NAME_LENGTH, TableSchema)
from repro.engine.table import Table
from repro.errors import CatalogError


@dataclass(frozen=True)
class CatalogSavepoint:
    """An O(#names) snapshot of the catalog's name spaces.

    Tables are immutable (every DML swaps in a whole new
    :class:`~repro.engine.table.Table`), so shallow dict copies pin the
    exact pre-savepoint contents; no column data is duplicated.
    Indexes are the one mutable species (``rebuild`` digests in
    place), so rollback re-digests any index whose table binding no
    longer matches the restored table.
    """

    tables: dict[str, Table] = field(default_factory=dict)
    views: dict[str, object] = field(default_factory=dict)
    indexes: dict[str, HashIndex] = field(default_factory=dict)


class Catalog:
    """Case-insensitive registry of tables and their indexes.

    The catalog also owns the dictionary-encoding cache: it is the one
    component that sees every base-table lifecycle event, so it seals
    cache tokens onto table columns on create/replace and invalidates
    entries on replace/drop (every DML path funnels through
    :meth:`replace_table`).
    """

    def __init__(self, max_columns: int = DEFAULT_MAX_COLUMNS,
                 max_name_length: int = DEFAULT_MAX_NAME_LENGTH,
                 encoding_cache_bytes: int = DEFAULT_ENCODING_CACHE_BYTES):
        self.max_columns = max_columns
        self.max_name_length = max_name_length
        self.encoding_cache = EncodingCache(encoding_cache_bytes)
        self._tables: dict[str, Table] = {}
        self._indexes: dict[str, HashIndex] = {}
        self._views: dict[str, object] = {}  # name -> ast.Select

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def validate_schema(self, schema: TableSchema) -> None:
        """Raise CatalogError when a schema violates a DBMS limit."""
        if schema.width() > self.max_columns:
            raise CatalogError(
                f"table {schema.name!r} would have {schema.width()} "
                f"columns; the maximum is {self.max_columns}")
        for name in [schema.name] + schema.column_names():
            if len(name) > self.max_name_length:
                raise CatalogError(
                    f"identifier {name!r} is {len(name)} characters; "
                    f"the maximum is {self.max_name_length}")

    def create_table(self, table: Table, replace: bool = False) -> None:
        key = table.name.lower()
        if key in self._tables and not replace:
            raise CatalogError(f"table {table.name!r} already exists")
        if key in self._views:
            raise CatalogError(f"{table.name!r} is a view")
        self.validate_schema(table.schema)
        if replace and key in self._tables:
            self.encoding_cache.invalidate_table(key)
        table.seal_cache_tokens()
        self._tables[key] = table

    def has_table(self, name: str) -> bool:
        return name.lower() in self._tables

    def table(self, name: str) -> Table:
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"no such table: {name!r}") from None

    def replace_table(self, table: Table) -> None:
        """Swap in new contents for an existing table and refresh its
        indexes.  The replacement carries a fresh version, so its
        cached encodings start cold; the old version's entries are
        dropped eagerly."""
        key = table.name.lower()
        if key not in self._tables:
            raise CatalogError(f"no such table: {table.name!r}")
        self.encoding_cache.invalidate_table(key)
        table.seal_cache_tokens()
        self._tables[key] = table
        for index in self.indexes_on(table.name):
            index.rebuild(table, cache=self.encoding_cache)

    def drop_table(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._tables:
            if if_exists:
                return
            raise CatalogError(f"no such table: {name!r}")
        del self._tables[key]
        self.encoding_cache.invalidate_table(key)
        stale = [idx_name for idx_name, idx in self._indexes.items()
                 if idx.table_name.lower() == key]
        for idx_name in stale:
            del self._indexes[idx_name]

    def table_names(self) -> list[str]:
        return [t.name for t in self._tables.values()]

    # ------------------------------------------------------------------
    # Views (the paper's Section 2: F may be "a view based on some
    # complex SQL query"; views re-run their defining SELECT on use)
    # ------------------------------------------------------------------
    def create_view(self, name: str, select, replace: bool = False
                    ) -> None:
        key = name.lower()
        if key in self._tables:
            raise CatalogError(f"{name!r} is a table")
        if key in self._views and not replace:
            raise CatalogError(f"view {name!r} already exists")
        if len(name) > self.max_name_length:
            raise CatalogError(
                f"identifier {name!r} is {len(name)} characters; "
                f"the maximum is {self.max_name_length}")
        self._views[key] = select

    def has_view(self, name: str) -> bool:
        return name.lower() in self._views

    def view(self, name: str):
        try:
            return self._views[name.lower()]
        except KeyError:
            raise CatalogError(f"no such view: {name!r}") from None

    def drop_view(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._views:
            if if_exists:
                return
            raise CatalogError(f"no such view: {name!r}")
        del self._views[key]

    def view_names(self) -> list[str]:
        return list(self._views)

    # ------------------------------------------------------------------
    # Indexes
    # ------------------------------------------------------------------
    def create_index(self, name: str, table_name: str,
                     column_names: Sequence[str],
                     replace: bool = False) -> HashIndex:
        key = name.lower()
        if key in self._indexes and not replace:
            raise CatalogError(f"index {name!r} already exists")
        table = self.table(table_name)
        for col in column_names:
            if not table.schema.has_column(col):
                raise CatalogError(
                    f"no column {col!r} in table {table_name!r}")
        index = HashIndex(name, table.name, column_names)
        index.rebuild(table, cache=self.encoding_cache)
        self._indexes[key] = index
        return index

    def drop_index(self, name: str, if_exists: bool = False) -> None:
        key = name.lower()
        if key not in self._indexes:
            if if_exists:
                return
            raise CatalogError(f"no such index: {name!r}")
        del self._indexes[key]

    def indexes_on(self, table_name: str) -> list[HashIndex]:
        lowered = table_name.lower()
        return [idx for idx in self._indexes.values()
                if idx.table_name.lower() == lowered]

    def find_index(self, table_name: str,
                   column_names: Iterable[str]) -> HashIndex | None:
        """An index on exactly these columns of this table, if any."""
        wanted = list(column_names)
        for index in self.indexes_on(table_name):
            if index.covers(wanted):
                return index
        return None

    def index_names(self) -> list[str]:
        return [idx.name for idx in self._indexes.values()]

    # ------------------------------------------------------------------
    # Savepoints (the atomicity substrate for multi-statement plans)
    # ------------------------------------------------------------------
    def savepoint(self) -> CatalogSavepoint:
        """Snapshot every name space; cheap (no data is copied)."""
        return CatalogSavepoint(tables=dict(self._tables),
                                views=dict(self._views),
                                indexes=dict(self._indexes))

    def fingerprint(self) -> tuple:
        """An identity snapshot for crash-consistency checks.

        Because tables are immutable, "same name bound to the same
        object" implies "same content": two fingerprints being equal
        means the catalog is byte-identical from a reader's point of
        view.  Hold a :meth:`savepoint` alongside the fingerprint to
        pin the objects (so ``id`` values cannot be recycled).
        """
        return (tuple(sorted((k, id(t))
                             for k, t in self._tables.items())),
                tuple(sorted(self._views)),
                tuple(sorted((k, id(i))
                             for k, i in self._indexes.items())))

    def rollback(self, savepoint: CatalogSavepoint) -> None:
        """Restore the catalog to ``savepoint``.

        Tables and views snap back to the exact objects captured
        (immutability makes that sufficient); encoding-cache entries
        of tables created or replaced since the savepoint are
        invalidated, and indexes that were rebuilt against
        now-discarded table versions are re-digested from the
        restored tables.
        """
        for key, table in self._tables.items():
            if savepoint.tables.get(key) is not table:
                # Created or replaced since the savepoint: its cached
                # encodings (any version) must not outlive it.
                self.encoding_cache.invalidate_table(key)
        self._tables = dict(savepoint.tables)
        self._views = dict(savepoint.views)
        self._indexes = dict(savepoint.indexes)
        for index in self._indexes.values():
            table = self._tables.get(index.table_name.lower())
            if table is not None and index.source_table() is not table:
                index.rebuild(table, cache=self.encoding_cache)
