"""Shared benchmark fixtures: the papers' synthetic tables at bench
scale.

The paper ran employee at 1M rows and sales at 10M on an 800 MHz
Teradata node; the benchmarks default to 1/10-1/50 of that so the
whole suite finishes in minutes.  Scale and rounds are tunable:

* ``REPRO_BENCH_EMPLOYEE`` / ``REPRO_BENCH_SALES`` /
  ``REPRO_BENCH_TL`` / ``REPRO_BENCH_CENSUS`` -- row counts;
* ``REPRO_BENCH_ROUNDS`` -- pedantic rounds per benchmark (default 1);
* ``REPRO_BENCH_FULL=1`` -- include the widest SIGMOD row
  (sales dept,store: 10,000 result columns, tens of seconds per cell).
"""

from __future__ import annotations

import os

import pytest

from repro import Database
from repro.datagen import (load_census, load_employee, load_sales,
                           load_transaction_line)


def _env_int(name: str, default: int) -> int:
    return int(os.environ.get(name, default))


EMPLOYEE_N = _env_int("REPRO_BENCH_EMPLOYEE", 100_000)
SALES_N = _env_int("REPRO_BENCH_SALES", 300_000)
TL_N = _env_int("REPRO_BENCH_TL", 100_000)
CENSUS_N = _env_int("REPRO_BENCH_CENSUS", 50_000)
ROUNDS = _env_int("REPRO_BENCH_ROUNDS", 1)
FULL = os.environ.get("REPRO_BENCH_FULL", "") == "1"

skip_unless_full = pytest.mark.skipif(
    not FULL,
    reason="10,000-column Hpct row; set REPRO_BENCH_FULL=1 to include")


@pytest.fixture(scope="session")
def sigmod_db() -> Database:
    """employee + sales, as in the SIGMOD evaluation."""
    db = Database()
    load_employee(db, EMPLOYEE_N)
    load_sales(db, SALES_N)
    return db


@pytest.fixture(scope="session")
def dmkd_db() -> Database:
    """uscensus + transactionLine at 1x, as in the DMKD evaluation."""
    db = Database()
    load_census(db, CENSUS_N)
    load_transaction_line(db, TL_N)
    return db


@pytest.fixture(scope="session")
def dmkd_db_2x() -> Database:
    """transactionLine at the doubled scale (the paper's n = 2M run)."""
    db = Database()
    load_transaction_line(db, 2 * TL_N)
    return db


def run_once(benchmark, func):
    """Run ``func`` under pytest-benchmark with bounded rounds."""
    return benchmark.pedantic(func, rounds=ROUNDS, iterations=1,
                              warmup_rounds=0)
